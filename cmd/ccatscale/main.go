// Command ccatscale regenerates the tables and figures of "Revisiting
// TCP Congestion Control Throughput Models & Fairness Properties At
// Scale" (IMC 2021) on the simulated testbed.
//
// Usage:
//
//	ccatscale <experiment> [flags]
//
// Experiments:
//
//	table1      Mathis constant C via packet-loss vs CWND-halving rate
//	fig2        Mathis median prediction error per flow count
//	fig3        packet-loss to CWND-halving ratio per flow count
//	burstiness  Goh–Barabási drop burstiness (edge vs core)
//	fig4        BBR intra-CCA fairness (JFI) at 20/100/200 ms
//	intra       intra-CCA fairness for any CCA (--cca)
//	fig5        Cubic share vs equal NewReno
//	fig6        one BBR flow vs NewReno crowd
//	fig7        one BBR flow vs Cubic crowd
//	fig8        BBR share vs equal NewReno/Cubic (--vs)
//	run         one custom run (--flows spec)
//
// Common flags (after the experiment name):
//
//	-scale N    CoreScale divisor: 10 → 1 Gbps/100–500 flows (default 10)
//	-full       use the paper's full CoreScale (10 Gbps, 1000–5000 flows)
//	-edge       run the EdgeScale setting instead of CoreScale
//	-rtt D      restrict fairness sweeps to one base RTT (e.g. 20ms)
//	-seed N     experiment seed (default 1)
//	-parallel N concurrent runs (default GOMAXPROCS)
//	-csv        emit CSV instead of the aligned table
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
	"ccatscale/internal/waremodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		scale    = fs.Int("scale", 10, "CoreScale divisor (10 → 1 Gbps / 100–500 flows)")
		full     = fs.Bool("full", false, "paper-scale CoreScale (10 Gbps, 1000–5000 flows; hours of CPU)")
		edge     = fs.Bool("edge", false, "run the EdgeScale setting")
		rttFlag  = fs.String("rtt", "", "restrict fairness sweeps to one base RTT (e.g. 20ms)")
		seed     = fs.Uint64("seed", 1, "experiment seed")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs")
		csv      = fs.Bool("csv", false, "emit CSV")
		ccaName  = fs.String("cca", "reno", "CCA for the intra experiment")
		vs       = fs.String("vs", "reno", "competitor for fig8 (reno|cubic)")
		flowSpec = fs.String("flows", "8xreno@20ms", "custom run flows, e.g. 4xbbr@20ms,4xcubic@100ms")
		duration = fs.Duration("duration", 0, "override measurement window (max length when -converge is set)")
		converge = fs.Duration("converge", 0, "enable the paper's early-stop rule with this window (e.g. 20s)")
		aqm      = fs.String("aqm", "", "bottleneck discipline: droptail (default) or codel")
		rateBps  = fs.Int64("rate-bps", 0, "override bottleneck rate in bits/sec (replay)")
		bufBytes = fs.Int64("buffer-bytes", 0, "override bottleneck buffer in bytes (replay)")
		warmup   = fs.Duration("warmup", 0, "override warm-up exclusion window")
		stagger  = fs.Duration("stagger", -1, "override flow start-stagger window")
		burst    = fs.String("burst", "", "Gilbert–Elliott burst loss \"meanLoss,meanBurstLen\" (e.g. 0.005,8)")
		outage   = fs.String("outage", "", "link outage schedule \"start,down,period,count[,hold]\" (e.g. 2s,1s,10s,3)")
		panicAt  = fs.Duration("panic-at", 0, "inject a panic at this virtual time (supervisor drill)")
		auditPol = fs.String("audit", "", "invariant auditing: off (default), warn, or strict")
		auditAt  = fs.Duration("audit-drill", 0, "corrupt queue accounting at this virtual time (auditor drill; needs -audit)")
		inFile   = fs.String("in", "", "failure record for the replay experiment")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	setting := pickSetting(*edge, *full, *scale)
	if *duration > 0 {
		setting.Duration = sim.Duration(*duration)
	}
	if *converge > 0 {
		setting.Converge = sim.Duration(*converge)
	}
	setting.AQM = *aqm
	if *rateBps > 0 {
		setting.Rate = units.Bandwidth(*rateBps)
	}
	if *bufBytes > 0 {
		setting.Buffer = units.ByteCount(*bufBytes)
	}
	if *warmup > 0 {
		setting.Warmup = sim.Duration(*warmup)
	}
	if *stagger >= 0 {
		setting.Stagger = sim.Duration(*stagger)
	}
	if *burst != "" {
		spec, err := core.ParseBurstLoss(*burst)
		if err != nil {
			fatal(err)
		}
		setting.BurstLoss = spec
	}
	if *outage != "" {
		spec, err := core.ParseOutage(*outage)
		if err != nil {
			fatal(err)
		}
		setting.Outage = spec
	}
	if *panicAt > 0 {
		setting.FaultPanicAt = sim.Duration(*panicAt)
	}
	setting.Audit = *auditPol
	if *auditAt > 0 {
		setting.AuditDrillAt = sim.Duration(*auditAt)
	}
	rtts := core.RTTs
	if *rttFlag != "" {
		d, err := time.ParseDuration(*rttFlag)
		if err != nil {
			fatal(err)
		}
		rtts = []sim.Time{sim.Duration(d)}
	}

	start := time.Now()
	var tab *report.Table
	var err error
	switch cmd {
	case "table1":
		tab, err = runTable1(setting, *seed, *parallel)
	case "fig2":
		tab, err = runFig2(setting, *seed, *parallel)
	case "fig3":
		tab, err = runFig3(setting, *seed, *parallel)
	case "burstiness":
		tab, err = runBurstiness(setting, *seed, *parallel)
	case "fig4":
		tab, err = runIntra(setting, "bbr", rtts, *seed, *parallel)
	case "intra":
		tab, err = runIntra(setting, *ccaName, rtts, *seed, *parallel)
	case "fig5":
		tab, err = runInter(setting, core.EqualSplit, "cubic", "reno", rtts, *seed, *parallel)
	case "fig6":
		tab, err = runInter(setting, core.OneVersusMany, "bbr", "reno", rtts, *seed, *parallel)
	case "fig7":
		tab, err = runInter(setting, core.OneVersusMany, "bbr", "cubic", rtts, *seed, *parallel)
	case "fig8":
		tab, err = runInter(setting, core.EqualSplit, "bbr", *vs, rtts, *seed, *parallel)
	case "rttmix":
		tab, err = runRTTMix(setting, *ccaName, *seed, *parallel)
	case "churn":
		tab, err = runChurn(setting, *ccaName, *seed)
	case "burstloss":
		tab, err = runBurstLoss(setting, *seed, *parallel)
	case "outage":
		tab, err = runOutage(setting, *seed, *parallel)
	case "replay":
		tab, err = runReplay(*inFile)
	case "timeseries":
		err = runTimeseries(setting, *flowSpec, *seed)
		return
	case "run":
		tab, err = runCustom(setting, *flowSpec, *seed)
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *csv {
		err = tab.WriteCSV(os.Stdout)
	} else {
		err = tab.WriteText(os.Stdout)
		fmt.Printf("\n[%s, seed %d, wall %s]\n", setting.Name, *seed, time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		fatal(err)
	}
}

func pickSetting(edge, full bool, scale int) core.Setting {
	switch {
	case edge:
		return core.EdgeScale()
	case full:
		return core.CoreScale()
	default:
		return core.CoreScaleScaled(scale)
	}
}

func runTable1(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Table 1: Mathis constant C (packet-loss vs CWND-halving rate)",
		"setting", "flows", "C(loss)", "C(halving)", "utilization")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.CLoss, r.CHalve, r.Utilization)
	}
	return tab, nil
}

func runFig2(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Figure 2: Mathis median prediction error (%)",
		"setting", "flows", "err(loss)%", "err(halving)%")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.MedianErrLoss*100, r.MedianErrHalve*100)
	}
	return tab, nil
}

func runFig3(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Figure 3: packet-loss to CWND-halving ratio",
		"setting", "flows", "ratio")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.LossToHalvingRatio)
	}
	return tab, nil
}

func runBurstiness(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Drop burstiness (Goh–Barabási; paper: ≈0.2 edge, ≈0.35 core)",
		"setting", "flows", "burstiness")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.DropBurstiness)
	}
	return tab, nil
}

func runIntra(s core.Setting, ccaName string, rtts []sim.Time, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.IntraCCASweep(s, ccaName, rtts, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("Intra-CCA fairness: %s (JFI; Fig 4 for bbr, Finding 4 for reno/cubic)", ccaName),
		"setting", "rtt", "flows", "JFI", "utilization")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.JFI, r.Utilization)
	}
	return tab, nil
}

func runInter(s core.Setting, mode core.InterCCAMode, a, b string, rtts []sim.Time, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.InterCCASweep(s, mode, a, b, rtts, seed, parallel)
	if err != nil {
		return nil, err
	}
	modeName := map[core.InterCCAMode]string{
		core.EqualSplit:    "50/50",
		core.OneVersusMany: "1 vs crowd",
	}[mode]
	title := fmt.Sprintf("Inter-CCA fairness: %s vs %s (%s): %s share of goodput", a, b, modeName, a)
	if mode == core.OneVersusMany && a == "bbr" {
		bufferBDP := float64(s.Buffer) / float64(units.BDP(s.Rate, core.DefaultRTT))
		title += fmt.Sprintf(" [Ware model: %s]", report.Pct(waremodel.SingleBBRShare(bufferBDP)))
	}
	tab := report.NewTable(title, "setting", "rtt", "flows", a+" share %", "utilization")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.Share[a]*100, r.Utilization)
	}
	return tab, nil
}

// runRTTMix runs the mixed-RTT extension: half the flows at 20 ms, half
// at 100 ms, one CCA, reporting the short-RTT class's share.
func runRTTMix(s core.Setting, ccaName string, seed uint64, parallel int) (*report.Table, error) {
	short, long := 20*sim.Millisecond, 100*sim.Millisecond
	rows, err := core.RTTMixSweep(s, ccaName, short, long, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("Mixed-RTT fairness (%s): share of the %v class vs the %v class", ccaName, short, long),
		"setting", "flows", "short-RTT share %", "JFI(short)", "JFI(long)", "utilization")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.ShortShare*100, r.ShortJFI, r.LongJFI, r.Utilization)
	}
	return tab, nil
}

// runTimeseries runs one custom experiment and streams the per-CCA
// goodput time series as CSV to stdout.
func runTimeseries(s core.Setting, spec string, seed uint64) error {
	flows, err := parseFlows(spec)
	if err != nil {
		return err
	}
	cfg := s.Build(flows, core.WithSeed(core.Seed(seed)))
	cfg.SeriesInterval = sim.Second
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print("seconds")
	for _, n := range res.SeriesNames {
		fmt.Printf(",%s_bps", n)
	}
	fmt.Println()
	for _, p := range res.Series {
		fmt.Printf("%.3f", p.At.Seconds())
		for _, r := range p.Rates {
			fmt.Printf(",%d", int64(r))
		}
		fmt.Println()
	}
	return nil
}

// runChurn runs the flow-churn extension at three offered loads.
func runChurn(s core.Setting, ccaName string, seed uint64) (*report.Table, error) {
	size := 500 * units.KB
	tab := report.NewTable(
		fmt.Sprintf("Extension: Poisson flow churn (%s, %v transfers) — flow completion times", ccaName, size),
		"load", "arrivals", "completed", "p50 FCT (s)", "p95 FCT (s)", "p99 FCT (s)", "drops")
	for _, load := range []float64{0.3, 0.6, 0.9} {
		cfg := core.ChurnConfig{
			Rate:          s.Rate,
			Buffer:        s.Buffer,
			CCA:           ccaName,
			RTT:           core.DefaultRTT,
			TransferBytes: size,
			ArrivalRate:   load * float64(s.Rate) / (float64(size) * 8),
			Duration:      s.Duration,
			Seed:          seed,
			AQM:           s.AQM,
		}
		res, err := core.RunChurn(cfg)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", load*100), res.Arrivals, res.Completed,
			res.P50FCT, res.P95FCT, res.P99FCT, res.Drops)
	}
	return tab, nil
}

// runCustom executes one run with a flow spec like
// "4xbbr@20ms,4xcubic@100ms".
func runCustom(s core.Setting, spec string, seed uint64) (*report.Table, error) {
	flows, err := parseFlows(spec)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(s.Build(flows, core.WithSeed(core.Seed(seed))))
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Custom run: %s (JFI %.3f, util %.3f, drops %d, burstiness %.3f)",
		spec, res.JFI(), res.Utilization, res.TotalDrops, res.DropBurstiness)
	if res.AuditViolations > 0 {
		title += fmt.Sprintf(" [AUDIT: %d violations, first: %v]",
			res.AuditViolations, res.AuditViolationSample[0].Error())
	}
	tab := report.NewTable(title,
		"flow", "cca", "rtt", "goodput", "loss%", "halve%", "meanRTT")
	for i, f := range res.Flows {
		tab.AddRow(i, f.Spec.CCA, f.Spec.RTT.String(), f.Goodput.String(),
			f.LossRate*100, f.HalvingRate*100, f.MeanRTT.String())
	}
	return tab, nil
}

// runBurstLoss runs the burst-loss extension: fixed mean loss rate,
// growing mean burst length, against the iid Mathis prediction.
func runBurstLoss(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.BurstLossSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("Extension: Gilbert–Elliott burst loss (mean loss %.1f%%, %d reno flows) vs iid Mathis prediction",
			core.BurstMeanLoss*100, rows[0].Flows),
		"setting", "burst len", "goodput/flow", "iid predict", "measured/model", "drops/halving", "burst drops")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.BurstLen, r.GoodputPerFlow.String(), r.PredictIID.String(),
			r.ModelRatio, r.DropsPerHalving, r.BurstDrops)
	}
	return tab, nil
}

// runOutage runs the link-flap extension: per-CCA goodput retention,
// RTOs, and fairness under periodic dark windows.
func runOutage(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.OutageSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Extension: link outages (periodic flaps; goodput relative to a clean run of the same CCA)",
		"setting", "cca", "down", "flaps", "goodput", "vs clean %", "RTOs", "outage drops", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.CCA, r.Down.String(), r.Flaps, r.Goodput.String(),
			r.GoodputFrac*100, r.RTOs, r.OutageDrops, r.JFI)
	}
	return tab, nil
}

// runReplay re-executes a failed run from the JSON failure record the
// reproduce sweep writes next to its results. A deterministic failure
// reproduces exactly; a repaired one yields the per-flow table.
func runReplay(path string) (*report.Table, error) {
	if path == "" {
		return nil, fmt.Errorf("replay needs -in <job>.failed.json")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	re, err := core.ReadRunError(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "replaying: %s (seed %d, failed at vt=%v after %d events)\n",
		re.Reason, re.Seed, re.VirtualTime, re.Events)
	res, err := core.Run(re.Config)
	if err != nil {
		return nil, fmt.Errorf("failure reproduced: %w", err)
	}
	tab := report.NewTable(
		fmt.Sprintf("Replay of %s: no failure this time (JFI %.3f, util %.3f, drops %d)",
			path, res.JFI(), res.Utilization, res.TotalDrops),
		"flow", "cca", "rtt", "goodput", "loss%", "halve%", "meanRTT")
	for i, fl := range res.Flows {
		tab.AddRow(i, fl.Spec.CCA, fl.Spec.RTT.String(), fl.Goodput.String(),
			fl.LossRate*100, fl.HalvingRate*100, fl.MeanRTT.String())
	}
	return tab, nil
}

// parseFlows parses "NxCCA@RTT[,...]".
func parseFlows(spec string) ([]core.FlowSpec, error) {
	var out []core.FlowSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		xi := strings.Index(part, "x")
		ai := strings.Index(part, "@")
		if xi < 0 || ai < 0 || ai < xi {
			return nil, fmt.Errorf("bad flow spec %q (want NxCCA@RTT)", part)
		}
		n, err := strconv.Atoi(part[:xi])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count in %q", part)
		}
		name := part[xi+1 : ai]
		d, err := time.ParseDuration(part[ai+1:])
		if err != nil {
			return nil, fmt.Errorf("bad RTT in %q: %v", part, err)
		}
		for i := 0; i < n; i++ {
			out = append(out, core.FlowSpec{CCA: name, RTT: sim.Duration(d)})
		}
	}
	return out, nil
}

func usage() {
	fmt.Fprint(os.Stderr, `ccatscale — reproduce "Revisiting TCP CC Throughput Models & Fairness At Scale" (IMC'21)

usage: ccatscale <experiment> [flags]

experiments:
  table1 | fig2 | fig3 | burstiness     Mathis-model analysis (§4)
  fig4 | intra -cca=reno|cubic|bbr      intra-CCA fairness (§5.1)
  fig5 | fig6 | fig7 | fig8 -vs=cubic   inter-CCA fairness (§5.2)
  rttmix -cca=reno                      mixed-RTT extension (20ms vs 100ms classes)
  churn -cca=reno [-aqm codel]          Poisson flow-churn extension (FCT quantiles)
  burstloss                             Gilbert–Elliott burst loss vs the iid Mathis model
  outage                                per-CCA recovery under periodic link flaps
  timeseries -flows=2xbbr@20ms,...      per-CCA goodput series as CSV
  run -flows=4xbbr@20ms,4xreno@20ms     custom run
  replay -in=<job>.failed.json          re-execute a failed run from its failure record

CCAs: reno, cubic, bbr, vegas, bbr2 (vegas and bbr2 extend beyond the
paper's three measured algorithms).

flags: -scale N | -full | -edge | -rtt 20ms | -seed N | -parallel N | -csv | -duration 60s | -converge 20s

fault injection (run/burstloss/outage): -burst meanLoss,meanBurstLen |
-outage start,down,period,count[,hold] | -panic-at 5s (supervisor drill);
replay overrides: -rate-bps N | -buffer-bytes N | -warmup 15s | -stagger 5s

self-verification: -audit warn|strict enables the invariant auditor
(conservation ledgers, TCP/CCA state checks); -audit-drill 5s corrupts
queue accounting at that virtual time to prove the ledger catches it.
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccatscale:", err)
	os.Exit(1)
}
