package main

import (
	"testing"
	"time"

	"ccatscale/internal/sim"
)

func TestParseFlows(t *testing.T) {
	flows, err := parseFlows("2xbbr@20ms, 3xreno@100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5 {
		t.Fatalf("flows = %d, want 5", len(flows))
	}
	if flows[0].CCA != "bbr" || flows[0].RTT != sim.Duration(20*time.Millisecond) {
		t.Fatalf("flow 0 = %+v", flows[0])
	}
	if flows[4].CCA != "reno" || flows[4].RTT != sim.Duration(100*time.Millisecond) {
		t.Fatalf("flow 4 = %+v", flows[4])
	}
}

func TestParseFlowsErrors(t *testing.T) {
	for _, bad := range []string{
		"",             // empty
		"bbr@20ms",     // missing count
		"2xbbr",        // missing RTT
		"0xbbr@20ms",   // zero count
		"-1xreno@20ms", // negative count
		"2xbbr@fast",   // bad duration
		"2@bbrx20ms",   // @ before x
	} {
		if _, err := parseFlows(bad); err == nil {
			t.Errorf("parseFlows(%q) accepted", bad)
		}
	}
}

func TestPickSetting(t *testing.T) {
	if s := pickSetting(true, false, 10); s.Name != "EdgeScale" {
		t.Fatalf("edge pick = %s", s.Name)
	}
	if s := pickSetting(false, true, 10); s.Name != "CoreScale" {
		t.Fatalf("full pick = %s", s.Name)
	}
	if s := pickSetting(false, false, 10); s.Name != "CoreScale/10" {
		t.Fatalf("scaled pick = %s", s.Name)
	}
	// Edge wins over full if both are set (documented precedence).
	if s := pickSetting(true, true, 10); s.Name != "EdgeScale" {
		t.Fatalf("precedence pick = %s", s.Name)
	}
}
