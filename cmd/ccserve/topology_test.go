package main

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// topoSpec is a small two-bottleneck parking-lot job: ECN at both hops,
// flows entering at different nodes, sized to run in milliseconds.
func topoSpec(name string, seed uint64) schema.JobSpec {
	return schema.JobSpec{
		Name: name,
		Seed: seed,
		Topology: &schema.TopologyDoc{
			Nodes: []string{"a", "b", "c"},
			Links: []schema.LinkDoc{
				{Name: "ab", From: "a", To: "b", RateMbps: 10, DelayMs: 2, BufferBytes: 32768, ECN: true},
				{Name: "bc", From: "b", To: "c", RateMbps: 8, DelayMs: 2, BufferBytes: 32768, ECN: true},
			},
		},
		Flows: []schema.FlowGroup{
			{CCA: "cubic", RTTMs: 20, Count: 1, Path: []string{"ab", "bc"}},
			{CCA: "reno", RTTMs: 20, Count: 1, Path: []string{"bc"}},
		},
		DurationS: 0.5,
	}
}

// TestSubmitTopologyScenario is the service half of the scenario
// acceptance: a topology job admitted over the wire runs through the
// same worker path as dumbbell jobs and commits a schema-versioned
// result to the store.
func TestSubmitTopologyScenario(t *testing.T) {
	cfg := testServerConfig(t, 1)
	s := startServer(t, cfg)
	defer s.Drain()

	resp, rr := submit(t, s, topoSpec("parkinglot", 42))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	if final.Jobs[0].State != schema.JobDone {
		t.Fatalf("topology job finished %s (%s), want done", final.Jobs[0].State, final.Jobs[0].Error)
	}
	st, err := store.OpenFS(filepath.Join(cfg.out, "store"), store.OSFS())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(final.Jobs[0].Key) {
		t.Fatalf("store is missing topology result %s", final.Jobs[0].Key)
	}

	// Identity: the same document resolves to the same key; a different
	// graph (one rate changed) must not.
	if j := mustBuildJob(t, topoSpec("parkinglot", 42)); j.key != final.Jobs[0].Key {
		t.Fatalf("identical topology keyed %s, want %s", j.key, final.Jobs[0].Key)
	}
	faster := topoSpec("parkinglot", 42)
	faster.Topology.Links[1].RateMbps = 9
	if j := mustBuildJob(t, faster); j.key == final.Jobs[0].Key {
		t.Fatal("changing a link rate did not change the job key")
	}
}

// TestSubmitTopologyRejections: graph defects bounce at admission with
// 400, whether the structural schema check or the compile-time graph
// check catches them — nothing un-runnable may reach the journal.
func TestSubmitTopologyRejections(t *testing.T) {
	s := startServer(t, testServerConfig(t, 0))
	defer s.Drain()

	zeroRate := topoSpec("a", 1)
	zeroRate.Topology.Links[0].RateMbps = 0
	if _, rr := submit(t, s, zeroRate); rr.Code != http.StatusBadRequest {
		t.Fatalf("zero-capacity link: %d, want 400", rr.Code)
	}

	unreachable := topoSpec("a", 1)
	unreachable.Topology.Nodes = append(unreachable.Topology.Nodes, "orphan")
	if _, rr := submit(t, s, unreachable); rr.Code != http.StatusBadRequest {
		t.Fatalf("unreachable node: %d, want 400", rr.Code)
	}

	brokenChain := topoSpec("a", 1)
	brokenChain.Flows[0].Path = []string{"bc", "ab"}
	if _, rr := submit(t, s, brokenChain); rr.Code != http.StatusBadRequest {
		t.Fatalf("broken path chain: %d, want 400", rr.Code)
	}

	noPath := topoSpec("a", 1)
	noPath.Flows[0].Path = nil
	if _, rr := submit(t, s, noPath); rr.Code != http.StatusBadRequest {
		t.Fatalf("missing path: %d, want 400", rr.Code)
	}
}
