package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/metrics"
	"ccatscale/internal/report"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// job is the server's in-memory state for one admitted scenario. The
// durable record is the journal; everything here is rebuilt from it at
// boot. All mutable fields are guarded by the server's mutex.
type job struct {
	spec    schema.JobSpec
	setting core.Setting
	flows   []core.FlowSpec
	key     string
	// fp is the estimator's predicted footprint, reserved in the
	// admission pool until the job reaches a terminal state.
	fp budget.Footprint
	// status is the externally visible state, streamed to subscribers
	// on every transition.
	status schema.JobStatus
	// gen is the journal generation of the record currently governing
	// status: 0 for a first submission, +1 each time a failed job is
	// resubmitted. Journal records carry it so replay and compaction
	// can order a retry's fresh OpQueued after the failure it retries,
	// regardless of which segment either landed in.
	gen uint64
	// attempts counts executions; failures counts consecutive failed
	// ones — the circuit breaker's input, replayed from the journal at
	// boot so a crash does not reset a poisoned config's strike count.
	attempts int
	failures int
	// subs are live event-stream subscribers; each receives framed
	// JSONL lines and is closed when the job reaches a terminal state.
	subs []chan []byte
}

// buildJob converts a validated JobSpec into the simulator's terms and
// computes its content address and estimated footprint. Compilation
// runs through core.CompileSpec — the same path cmd/reproduce
// -scenario takes — so a scenario's key is the same no matter which
// front end ran it. It can fail past schema validation: topology
// graph errors (unreachable nodes, broken paths) only surface when the
// graph compiles.
func buildJob(spec schema.JobSpec) (*job, error) {
	setting, flows, err := core.CompileSpec(spec)
	if err != nil {
		return nil, err
	}
	j := &job{
		spec:    spec,
		setting: setting,
		flows:   flows,
		key:     jobKey(spec.Name, spec.Seed, setting),
	}
	j.fp = core.EstimateConfig(j.config())
	j.status = schema.JobStatus{Name: spec.Name, Key: j.key, State: schema.JobQueued}
	return j, nil
}

// config builds the job's RunConfig. Live attachments (Ctx, Telemetry)
// are layered on by the worker per attempt.
func (j *job) config() core.RunConfig {
	return j.setting.Build(j.flows, core.WithSeed(core.Seed(j.spec.Seed)))
}

// jobKey is the content address of a job's result: name and seed in the
// clear plus a hash of the governance-zeroed setting — the same scheme
// cmd/reproduce uses, so a scenario always commits to the same key no
// matter which front end ran it.
func jobKey(name string, seed uint64, s core.Setting) string {
	s.Budget = nil
	s.Retries = 0
	s.Fidelity = 0
	s.WallLimit = 0
	s.Telemetry = nil
	s.Ctx = nil
	s.UsageSink = nil
	data, err := json.Marshal(struct {
		Name    string
		Seed    uint64
		Setting core.Setting
	}{name, seed, s})
	if err != nil {
		data = []byte(name)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s-%d-%x", name, seed, sum[:8])
}

// batchID names a batch by its membership: a hash of the sorted member
// keys, so resubmitting the same scenarios addresses the same batch and
// an idempotent client can safely retry a submit whose response it
// lost.
func batchID(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, k := range sorted {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// deadline derives the job's wall-clock allowance from the estimator:
// headroom times the predicted wall, floored so tiny estimates do not
// starve real runs. The worker turns it into a context deadline, which
// core.RunCtx clamps its watchdog under — so a blown deadline surfaces
// as a replayable wall-clock RunError with commit margin to spare.
func (j *job) deadline(factor float64, floor time.Duration) time.Duration {
	d := time.Duration(factor * float64(j.fp.Wall))
	if d < floor {
		d = floor
	}
	return d
}

// renderResult builds the canonical result table for a finished run.
// Everything in it derives from the deterministic simulation — no wall
// clock, no hostnames — so the payload committed to the store is
// byte-identical across reruns, processes, and crash recoveries.
func renderResult(spec schema.JobSpec, res core.RunResult) *report.Table {
	tab := report.NewTable(spec.Name,
		"flow", "cca", "rtt_ms", "goodput_mbps", "delivered_segs", "drops", "retx_rate")
	goodputs := make([]float64, len(res.Flows))
	for i, f := range res.Flows {
		goodputs[i] = float64(f.Goodput)
		retx := 0.0
		if f.SegmentsSent > 0 {
			retx = 1 - float64(f.SegmentsDelivered)/float64(f.SegmentsSent)
			if retx < 0 {
				retx = 0
			}
		}
		tab.AddRow(i, f.Spec.CCA,
			float64(f.Spec.RTT)/float64(sim.Millisecond),
			float64(f.Goodput)/float64(units.MbitPerSec),
			f.SegmentsDelivered, f.Drops, report.Pct(retx))
	}
	tab.AddNote("aggregate goodput %.2f Mbps, utilization %s, JFI %.4f",
		float64(res.AggregateGoodput)/float64(units.MbitPerSec),
		report.Pct(res.Utilization), metrics.JFI(goodputs))
	if res.Converged {
		tab.AddNote("converged at %v (window %v)", res.Window, res.Window)
	}
	return tab
}

// queuedDetail is the payload of an OpQueued journal record: the full
// client spec, so a crashed server re-admits its queue from the journal
// alone, plus the batch the submission belonged to.
type queuedDetail struct {
	Spec  schema.JobSpec `json:"spec"`
	Batch string         `json:"batch"`
}

// terminalDetail is the payload of terminal journal records: the job's
// final status plus its batch, so boot recovery rebuilds both the
// status map and batch membership from the journal's frontier.
type terminalDetail struct {
	Status schema.JobStatus `json:"status"`
	Batch  string           `json:"batch,omitempty"`
}
