package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// testSpec is a scenario small enough that a full run takes
// milliseconds: one flow, half a virtual second, 10 Mbps.
func testSpec(name string, seed uint64) schema.JobSpec {
	return schema.JobSpec{
		Name:        name,
		Seed:        seed,
		RateMbps:    10,
		BufferBytes: 32768,
		DurationS:   0.5,
		Flows:       []schema.FlowGroup{{CCA: "reno", RTTMs: 20, Count: 1}},
	}
}

// mustBuildJob compiles a spec the test knows is valid.
func mustBuildJob(t testing.TB, spec schema.JobSpec) *job {
	t.Helper()
	j, err := buildJob(spec)
	if err != nil {
		t.Fatalf("buildJob(%s): %v", spec.Name, err)
	}
	return j
}

func testServerConfig(t *testing.T, workers int) serverConfig {
	t.Helper()
	return serverConfig{
		out:            t.TempDir(),
		workers:        workers,
		slots:          8,
		leaseTTL:       time.Second,
		leaseHeartbeat: 100 * time.Millisecond,
		minDeadline:    30 * time.Second,
		drainTimeout:   5 * time.Second,
		stderr:         testWriter{t},
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func startServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	return s
}

// do runs one request through the server's full mux (so path wildcards
// and telemetry middleware are exercised) and decodes the JSON reply.
func do(t testing.TB, s *server, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if out != nil && rr.Body.Len() > 0 {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response (%d): %v\n%s", method, path, rr.Code, err, rr.Body.String())
		}
	}
	return rr
}

func submit(t testing.TB, s *server, specs ...schema.JobSpec) (schema.BatchResponse, *httptest.ResponseRecorder) {
	t.Helper()
	var resp schema.BatchResponse
	rr := do(t, s, "POST", "/v1/batches", schema.BatchRequest{SchemaVersion: schema.Version, Jobs: specs}, &resp)
	return resp, rr
}

// waitBatch polls a batch until every member is terminal.
func waitBatch(t testing.TB, s *server, batch string, timeout time.Duration) schema.BatchResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var resp schema.BatchResponse
		rr := do(t, s, "GET", "/v1/batches/"+batch, nil, &resp)
		if rr.Code != http.StatusOK {
			t.Fatalf("GET batch %s: %d: %s", batch, rr.Code, rr.Body.String())
		}
		alive := 0
		for _, j := range resp.Jobs {
			if !schema.JobTerminal(j.State) {
				alive++
			}
		}
		if alive == 0 {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s not terminal after %v: %+v", batch, timeout, resp.Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRunsAndDedupes(t *testing.T) {
	cfg := testServerConfig(t, 2)
	s := startServer(t, cfg)
	defer s.Drain()

	resp, rr := submit(t, s, testSpec("a", 1), testSpec("b", 2))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	if len(resp.Jobs) != 2 || resp.Batch == "" {
		t.Fatalf("unexpected batch response: %+v", resp)
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	for _, j := range final.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("job %s finished %s (%s), want done", j.Name, j.State, j.Error)
		}
	}

	// The results are in the content-addressed store.
	st, err := store.OpenFS(filepath.Join(cfg.out, "store"), store.OSFS())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range final.Jobs {
		if !st.Has(j.Key) {
			t.Fatalf("store is missing result %s", j.Key)
		}
	}

	// Resubmitting the identical batch computes nothing: same batch id,
	// every member immediately terminal.
	again, rr := submit(t, s, testSpec("a", 1), testSpec("b", 2))
	if rr.Code != http.StatusCreated {
		t.Fatalf("resubmit: %d: %s", rr.Code, rr.Body.String())
	}
	if again.Batch != resp.Batch {
		t.Fatalf("same scenarios produced batch %s, want %s", again.Batch, resp.Batch)
	}
	for _, j := range again.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("resubmitted job %s is %s, want immediately done", j.Name, j.State)
		}
	}

	// A single-job view agrees.
	var one schema.JobStatus
	if rr := do(t, s, "GET", "/v1/jobs/"+final.Jobs[0].Key, nil, &one); rr.Code != http.StatusOK {
		t.Fatalf("GET job: %d", rr.Code)
	}
	if one.State != schema.JobDone {
		t.Fatalf("job view state %s, want done", one.State)
	}
}

func TestBackpressure429(t *testing.T) {
	cfg := testServerConfig(t, 0) // no workers: admitted jobs stay queued
	cfg.slots = 2
	s := startServer(t, cfg)
	defer s.Drain()

	// A batch larger than the queue bounces whole: all-or-nothing.
	var errResp schema.ErrorResponse
	rr := do(t, s, "POST", "/v1/batches",
		schema.BatchRequest{SchemaVersion: schema.Version, Jobs: []schema.JobSpec{
			testSpec("a", 1), testSpec("b", 2), testSpec("c", 3),
		}}, &errResp)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: %d, want 429: %s", rr.Code, rr.Body.String())
	}
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", rr.Header().Get("Retry-After"))
	}
	if errResp.RetryAfterS < 1 || !strings.Contains(errResp.Error, "queue") {
		t.Fatalf("error body should mirror the header and name the queue: %+v", errResp)
	}

	// Nothing from the bounced batch leaked into the pool: a batch that
	// fits is admitted in full...
	if _, rr := submit(t, s, testSpec("a", 1), testSpec("b", 2)); rr.Code != http.StatusCreated {
		t.Fatalf("fitting batch: %d: %s", rr.Code, rr.Body.String())
	}
	// ...and now the queue is full, so one more job bounces.
	if _, rr := submit(t, s, testSpec("d", 4)); rr.Code != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue: %d, want 429", rr.Code)
	}
	// Duplicates of queued work dedupe instead of consuming slots.
	if _, rr := submit(t, s, testSpec("a", 1)); rr.Code != http.StatusCreated {
		t.Fatalf("duplicate of queued job: %d, want 201 dedupe", rr.Code)
	}
}

func TestBackpressureBudget(t *testing.T) {
	cfg := testServerConfig(t, 0)
	cfg.queueBudget = &budget.Budget{HeapBytes: 1} // nothing fits
	s := startServer(t, cfg)
	defer s.Drain()

	rr := do(t, s, "POST", "/v1/batches",
		schema.BatchRequest{SchemaVersion: schema.Version, Jobs: []schema.JobSpec{testSpec("a", 1)}}, nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch: %d, want 429: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("budget rejection carries no Retry-After")
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	s := startServer(t, testServerConfig(t, 0))
	defer s.Drain()

	bad := testSpec("a", 1)
	bad.RateMbps = -1
	if _, rr := submit(t, s, bad); rr.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d, want 400", rr.Code)
	}
	if _, rr := submit(t, s); rr.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", rr.Code)
	}
	rr := do(t, s, "POST", "/v1/batches",
		schema.BatchRequest{SchemaVersion: "99.0", Jobs: []schema.JobSpec{testSpec("a", 1)}}, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("wrong schema version: %d, want 400", rr.Code)
	}
	if rr := do(t, s, "GET", "/v1/jobs/nope", nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", rr.Code)
	}
	if rr := do(t, s, "GET", "/v1/batches/nope", nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown batch: %d, want 404", rr.Code)
	}
}

func TestDrainRefusesSubmitsAndFlipsHealth(t *testing.T) {
	cfg := testServerConfig(t, 0)
	cfg.drainTimeout = 50 * time.Millisecond
	s := startServer(t, cfg)

	resp, rr := submit(t, s, testSpec("a", 1))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d", rr.Code)
	}
	var health schema.HealthResponse
	if rr := do(t, s, "GET", "/healthz", nil, &health); rr.Code != http.StatusOK || health.State != schema.ServerReady {
		t.Fatalf("healthz before drain: %d %+v", rr.Code, health)
	}
	if health.Queued != 1 {
		t.Fatalf("healthz queued = %d, want 1", health.Queued)
	}

	s.Drain()

	if rr := do(t, s, "GET", "/healthz", nil, &health); rr.Code != http.StatusServiceUnavailable || health.State != schema.ServerDraining {
		t.Fatalf("healthz after drain: %d %+v, want 503 draining", rr.Code, health)
	}
	if _, rr := submit(t, s, testSpec("b", 2)); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rr.Code)
	}

	// The checkpointed job survives the restart: a new server over the
	// same directory recovers it from the journal and runs it.
	cfg2 := cfg
	cfg2.workers = 2
	s2 := startServer(t, cfg2)
	defer s2.Drain()
	final := waitBatch(t, s2, resp.Batch, 30*time.Second)
	if len(final.Jobs) != 1 || final.Jobs[0].State != schema.JobDone {
		t.Fatalf("recovered job after restart: %+v, want done", final.Jobs)
	}
}

func TestSecondBootServesFromStore(t *testing.T) {
	cfg := testServerConfig(t, 2)
	s := startServer(t, cfg)
	resp, rr := submit(t, s, testSpec("a", 1), testSpec("b", 2))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d", rr.Code)
	}
	waitBatch(t, s, resp.Batch, 30*time.Second)
	s.Drain()

	s2 := startServer(t, cfg)
	defer s2.Drain()
	// The journal replay carries the terminal states across the boot...
	again, rr := submit(t, s2, testSpec("a", 1), testSpec("b", 2))
	if rr.Code != http.StatusCreated {
		t.Fatalf("resubmit after reboot: %d: %s", rr.Code, rr.Body.String())
	}
	for _, j := range again.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("job %s after reboot is %s, want done without recomputation", j.Name, j.State)
		}
	}
}

func TestQuarantineAfterRepeatedFailures(t *testing.T) {
	cfg := testServerConfig(t, 1)
	cfg.breakerAfter = 2
	// A deadline far below any real run forces a wall-clock failure on
	// every attempt without burning test time.
	cfg.minDeadline = time.Millisecond
	cfg.deadlineFactor = 1e-9
	cfg.retries = 0
	s := startServer(t, cfg)
	defer s.Drain()

	spec := testSpec("doomed", 1)
	spec.DurationS = 600 // big enough that 1ms of wall clock cannot finish it
	resp, rr := submit(t, s, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d", rr.Code)
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	if final.Jobs[0].State != schema.JobFailed {
		t.Fatalf("first attempt: %s (%s), want failed", final.Jobs[0].State, final.Jobs[0].Error)
	}

	// The client retries; the breaker trips at the threshold.
	resp, rr = submit(t, s, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("retry submit: %d", rr.Code)
	}
	final = waitBatch(t, s, resp.Batch, 30*time.Second)
	j := final.Jobs[0]
	if j.State != schema.JobQuarantined {
		t.Fatalf("second failure: %s, want quarantined", j.State)
	}
	if !strings.Contains(j.Error, "quarantined after 2 failures") {
		t.Fatalf("quarantine error %q should count the strikes", j.Error)
	}

	// A quarantined config refuses further runs: resubmit dedupes to the
	// quarantined status instead of executing.
	resp, rr = submit(t, s, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("post-quarantine submit: %d", rr.Code)
	}
	if resp.Jobs[0].State != schema.JobQuarantined {
		t.Fatalf("post-quarantine state %s, want quarantined", resp.Jobs[0].State)
	}

	// The failure record is parked beside the store for offline replay.
	if _, err := os.Stat(filepath.Join(cfg.out, j.Key+".failed.json")); err != nil {
		t.Fatalf("quarantine should leave a replayable failure record: %v", err)
	}

	// ...and the breaker survives a reboot: the journal replays the
	// strike count, so the next server refuses the config too.
	s.Drain()
	s2 := startServer(t, cfg)
	defer s2.Drain()
	resp, rr = submit(t, s2, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("post-reboot submit: %d", rr.Code)
	}
	if resp.Jobs[0].State != schema.JobQuarantined {
		t.Fatalf("post-reboot state %s, want quarantined to survive restart", resp.Jobs[0].State)
	}
}

// writeSegment appends records into the named owner's journal segment,
// standing in for a previous boot of the server.
func writeSegment(t *testing.T, dir, owner string, recs ...store.JournalRecord) {
	t.Helper()
	j, _, err := store.OpenJournalSet(store.OSFS(), dir, owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBootRecoveryWithFewerSlotsThanBacklog(t *testing.T) {
	cfg := testServerConfig(t, 0) // no workers: admitted jobs stay queued
	s := startServer(t, cfg)
	resp, rr := submit(t, s, testSpec("a", 1), testSpec("b", 2), testSpec("c", 3), testSpec("d", 4))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	s.Drain()

	// Restart with a single slot. The queue must still hold the whole
	// recovered backlog before any worker starts, or newServer blocks
	// forever on its own channel while holding the singleton lease.
	cfg2 := cfg
	cfg2.slots = 1
	cfg2.workers = 2
	booted := make(chan *server, 1)
	bootErr := make(chan error, 1)
	go func() {
		s2, err := newServer(cfg2)
		if err != nil {
			bootErr <- err
			return
		}
		booted <- s2
	}()
	select {
	case err := <-bootErr:
		t.Fatalf("reboot with slots=1: %v", err)
	case s2 := <-booted:
		defer s2.Drain()
		final := waitBatch(t, s2, resp.Batch, 30*time.Second)
		for _, j := range final.Jobs {
			if j.State != schema.JobDone {
				t.Fatalf("recovered job %s ended %s (%s), want done", j.Name, j.State, j.Error)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("newServer deadlocked recovering a backlog larger than -slots")
	}
}

func TestResubmitFailedJobAfterRebootRunsRealSpec(t *testing.T) {
	spec := testSpec("phoenix", 5)

	// Reference: the spec's true result bytes from an undisturbed server.
	refCfg := testServerConfig(t, 2)
	ref := startServer(t, refCfg)
	resp, rr := submit(t, ref, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("reference submit: %d: %s", rr.Code, rr.Body.String())
	}
	if final := waitBatch(t, ref, resp.Batch, 30*time.Second); final.Jobs[0].State != schema.JobDone {
		t.Fatalf("reference run: %s (%s)", final.Jobs[0].State, final.Jobs[0].Error)
	}
	ref.Drain()
	reference := storeFingerprint(t, refCfg.out)

	// Boot one: an impossible deadline fails the job, leaving a Failed
	// terminal in the journal.
	cfg := testServerConfig(t, 1)
	cfg.minDeadline = time.Nanosecond
	cfg.deadlineFactor = 1e-9
	s1 := startServer(t, cfg)
	resp, rr = submit(t, s1, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("doomed submit: %d: %s", rr.Code, rr.Body.String())
	}
	if final := waitBatch(t, s1, resp.Batch, 30*time.Second); final.Jobs[0].State != schema.JobFailed {
		t.Fatalf("doomed run: %s, want failed", final.Jobs[0].State)
	}
	s1.Drain()

	// Boot two: compaction reduces boot one's segment to the terminal
	// record, so replay rebuilds the job as a spec-less stub. The
	// resubmission must rehydrate it — the re-run executes the real
	// scenario and commits the same bytes as the undisturbed run, not a
	// degenerate zero-config under the real key.
	cfg2 := cfg
	cfg2.minDeadline = 30 * time.Second
	cfg2.deadlineFactor = 4
	s2 := startServer(t, cfg2)
	defer s2.Drain()
	resp, rr = submit(t, s2, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("resubmit after reboot: %d: %s", rr.Code, rr.Body.String())
	}
	if final := waitBatch(t, s2, resp.Batch, 60*time.Second); final.Jobs[0].State != schema.JobDone {
		t.Fatalf("resubmitted run: %s (%s), want done", final.Jobs[0].State, final.Jobs[0].Error)
	}
	if got := storeFingerprint(t, cfg.out); got != reference {
		t.Errorf("resubmitted job committed %s, want the clean run's %s — the stub was not rehydrated", got, reference)
	}
}

func TestReplayPendingBeatsStaleTerminalAcrossSegments(t *testing.T) {
	cfg := testServerConfig(t, 1)
	spec := testSpec("replayed", 9)
	built := mustBuildJob(t, spec)
	qd, err := json.Marshal(queuedDetail{Spec: spec, Batch: "B"})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := json.Marshal(terminalDetail{Status: schema.JobStatus{
		Name: spec.Name, Key: built.key, State: schema.JobFailed, Error: "boom",
	}, Batch: "B"})
	if err != nil {
		t.Fatal(err)
	}

	// The older boot's segment sorts lexicographically after the newer
	// boot's, so replay sees the stale gen-0 terminal last. The gen-1
	// resubmission it retries must still be recovered and run.
	writeSegment(t, cfg.out, "z-old",
		store.JournalRecord{Op: store.OpQueued, Job: spec.Name, Key: built.key, Gen: 0, Detail: qd},
		store.JournalRecord{Op: store.OpFailed, Job: spec.Name, Key: built.key, Gen: 0, Detail: fd},
	)
	writeSegment(t, cfg.out, "a-new",
		store.JournalRecord{Op: store.OpQueued, Job: spec.Name, Key: built.key, Gen: 1, Detail: qd},
	)

	s := startServer(t, cfg)
	defer s.Drain()
	final := waitBatch(t, s, "B", 30*time.Second)
	if len(final.Jobs) != 1 || final.Jobs[0].State != schema.JobDone {
		t.Fatalf("replayed batch = %+v, want the gen-1 resubmission recovered and done", final.Jobs)
	}
}

func TestEventsStreamDeliversTerminalStatus(t *testing.T) {
	cfg := testServerConfig(t, 0)
	s := startServer(t, cfg)

	resp, rr := submit(t, s, testSpec("a", 1))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d", rr.Code)
	}
	key := resp.Jobs[0].Key

	// Subscribe while queued, then let a late-started worker finish the
	// job; the stream must deliver the done transition and end.
	req := httptest.NewRequest("GET", "/v1/jobs/"+key+"/events", nil)
	rr2 := httptest.NewRecorder()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		s.Handler().ServeHTTP(rr2, req)
	}()
	time.Sleep(20 * time.Millisecond) // let the subscription register

	s.wg.Add(1)
	go s.workerLoop()

	select {
	case <-streamDone:
	case <-time.After(30 * time.Second):
		t.Fatal("event stream never terminated")
	}
	lines := bytes.Split(bytes.TrimSpace(rr2.Body.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream delivered %d lines, want at least queued+done", len(lines))
	}
	var last struct {
		Type string           `json:"type"`
		Data schema.JobStatus `json:"data"`
	}
	sawRunning := false
	for _, ln := range lines {
		var ev struct {
			Type string          `json:"type"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", ln, err)
		}
		if ev.Type != "status" {
			continue
		}
		if err := json.Unmarshal(ln, &last); err != nil {
			t.Fatalf("bad status line %q: %v", ln, err)
		}
		if last.Data.State == schema.JobRunning {
			sawRunning = true
		}
	}
	if last.Data.State != schema.JobDone {
		t.Fatalf("final streamed state %s, want done", last.Data.State)
	}
	if !sawRunning {
		t.Fatal("stream skipped the running transition")
	}
	s.Drain()
}

func TestMetricsCountRequests(t *testing.T) {
	s := startServer(t, testServerConfig(t, 0))
	defer s.Drain()

	do(t, s, "GET", "/healthz", nil, nil)
	do(t, s, "GET", "/healthz", nil, nil)
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if rr := do(t, s, "GET", "/metricsz", nil, &snap); rr.Code != http.StatusOK {
		t.Fatalf("metricsz: %d", rr.Code)
	}
	if got := snap.Counters["http_requests_total/GET /healthz"]; got != 2 {
		t.Fatalf("healthz request counter = %d, want 2 (snapshot: %v)", got, snap.Counters)
	}
}

func TestHeartbeatValidationAtBoot(t *testing.T) {
	cfg := testServerConfig(t, 0)
	cfg.leaseTTL = 9 * time.Second
	cfg.leaseHeartbeat = 3 * time.Second
	if _, err := newServer(cfg); err == nil || !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("newServer accepted heartbeat=ttl/3: %v", err)
	}
}

func TestSingletonLeaseRefusesSecondServer(t *testing.T) {
	cfg := testServerConfig(t, 0)
	cfg.leaseTTL = 500 * time.Millisecond
	cfg.leaseHeartbeat = 50 * time.Millisecond
	s := startServer(t, cfg)
	defer s.Drain()

	if _, err := newServer(cfg); err == nil || !strings.Contains(err.Error(), "already served") {
		t.Fatalf("second server on a live directory should refuse: %v", err)
	}
}
