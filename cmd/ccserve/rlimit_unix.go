//go:build linux || darwin

package main

import "syscall"

// setWorkerMemLimit caps this process's virtual address space with
// RLIMIT_AS. The Go runtime turns an over-limit mmap into a fatal
// "out of memory" abort (exit 2) — exactly the contained, single-
// process death the fleet design wants from a mis-scaled config. The
// limit must sit above the runtime's own address-space reservations;
// budget.WorkerMemLimit owns that floor.
func setWorkerMemLimit(n int64) error {
	lim := syscall.Rlimit{Cur: uint64(n), Max: uint64(n)}
	return syscall.Setrlimit(syscall.RLIMIT_AS, &lim)
}
