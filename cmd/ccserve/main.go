// Command ccserve runs congestion-control scenario batches as a
// service: a long-running HTTP server that prices submitted scenarios
// with the footprint estimator, admits them under a global budget
// (full queue = 429 + Retry-After, never an unbounded goroutine pile),
// dedupes (config, seed) pairs against the content-addressed result
// store, and executes them on a fleet of process-isolated worker
// subprocesses under estimator-derived deadlines and OS-level memory
// ceilings, streaming per-job progress.
//
// Robustness is the point: every admitted job is journaled before it
// is queued, so SIGKILL at any instant loses no accepted work — the
// next boot replays the write-ahead log, re-admits the unfinished
// queue, and serves already-committed results from the store without
// recomputation. SIGTERM drains gracefully: stop admitting, finish
// in-flight jobs within a grace period, checkpoint the rest. Worker
// processes add fault isolation on top: a config that OOMs or crashes
// kills one subprocess, not the service, and a config that keeps
// crashing is quarantined as poisoned after bounded retries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/store"
)

func main() {
	// Hidden worker mode: the supervisor re-execs this same binary with
	// the single argument "-worker" and a schema.WorkerJob on stdin.
	// Dispatch before flag parsing so the worker surface stays frozen —
	// supervisor flags must never leak into (or gate) the worker
	// protocol.
	if len(os.Args) == 2 && os.Args[1] == "-worker" {
		os.Exit(workerRun(store.OSFS(), os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", "localhost:8080", "listen address (host:port; port 0 = ephemeral)")
		out            = fs.String("out", "serve-out", "output directory (store, journal, leases)")
		workers        = fs.Int("workers", 2, "concurrent simulation workers")
		slots          = fs.Int("slots", 64, "admission slots: max queued+running jobs before 429")
		queueHeap      = fs.Int64("queue-heap", 0, "aggregate estimated heap bytes across admitted jobs (0 = unlimited)")
		queueWall      = fs.Duration("queue-wall", 0, "aggregate estimated wall time across admitted jobs (0 = unlimited)")
		retries        = fs.Int("retries", 1, "reduced-fidelity retries per execution attempt")
		leaseTTL       = fs.Duration("lease-ttl", 30*time.Second, "lease staleness threshold")
		leaseHeartbeat = fs.Duration("lease-heartbeat", 0, "lease refresh interval (0 = ttl/6); must be under a third of -lease-ttl")
		breaker        = fs.Int("breaker", 3, "consecutive failures before a config is quarantined")
		deadlineFactor = fs.Float64("deadline-factor", 4, "wall-clock deadline as a multiple of the estimated wall time")
		minDeadline    = fs.Duration("min-deadline", 15*time.Second, "floor for per-job deadlines")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs at SIGTERM")
		inprocess      = fs.Bool("inprocess", false, "run jobs in the server process instead of worker subprocesses (no fault isolation)")
		workerMem      = fs.Int64("worker-mem", 0, "hard cap on any worker's RLIMIT_AS in bytes (0 = estimator-derived only)")
		poisonAfter    = fs.Int("poison-after", 3, "worker crashes before a config is poisoned (terminal, survives resubmission)")
		hedgeFactor    = fs.Float64("hedge-factor", 2, "launch a duplicate worker past this multiple of the estimated wall time (<0 disables)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *workers < 1 {
		*workers = 1
	}

	// SIGTERM coverage starts before boot recovery, not after: a drain
	// signal that lands while the journal is replaying must checkpoint
	// and exit cleanly, not be dropped on the floor until the listener
	// is up.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()

	cfg := serverConfig{
		out:            *out,
		workers:        *workers,
		slots:          *slots,
		retries:        *retries,
		leaseTTL:       *leaseTTL,
		leaseHeartbeat: *leaseHeartbeat,
		deadlineFactor: *deadlineFactor,
		minDeadline:    *minDeadline,
		breakerAfter:   *breaker,
		drainTimeout:   *drainTimeout,
		stderr:         stderr,
		bootCtx:        sigCtx,
	}
	if *queueHeap > 0 || *queueWall > 0 {
		cfg.queueBudget = &budget.Budget{HeapBytes: *queueHeap, Wall: *queueWall}
	}
	if !*inprocess {
		cfg.fleet = &fleetConfig{
			poisonAfter: *poisonAfter,
			hedgeFactor: *hedgeFactor,
			memCap:      *workerMem,
		}
	}

	s, err := newServer(cfg)
	if err != nil {
		if errors.Is(err, errBootCanceled) {
			fmt.Fprintf(stdout, "ccserve: %v\n", err)
			return 0
		}
		fmt.Fprintf(stderr, "ccserve: %v\n", err)
		return 2
	}
	if sigCtx.Err() != nil {
		// Signal landed in the gap between boot completing and the
		// listener opening: same clean checkpoint, via the normal drain.
		fmt.Fprintln(stdout, "ccserve: shutdown signal during startup: draining")
		s.Drain()
		return 0
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Drain()
		fmt.Fprintf(stderr, "ccserve: %v\n", err)
		return 2
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(stdout, "ccserve: listening on %s, results in %s\n", ln.Addr(), *out)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-sigCtx.Done():
		fmt.Fprintf(stdout, "ccserve: shutdown signal: draining (grace %v)\n", *drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(stderr, "ccserve: serve: %v\n", err)
		s.Drain()
		return 1
	}

	// Drain order: stop workers first (healthz already reports
	// draining), so jobs finish or checkpoint before the listener
	// closes and clients can watch the state flip while it happens.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "ccserve: shutdown: %v\n", err)
	}
	<-errCh // reap Serve's ErrServerClosed
	fmt.Fprintln(stdout, "ccserve: drained, exiting")
	return 0
}
