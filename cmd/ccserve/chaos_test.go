package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/schema"
	"ccatscale/internal/store"
	"ccatscale/internal/store/chaostest"
)

// chaosSpecs is the batch every chaos cycle submits: two scenarios tiny
// enough that a full run is milliseconds, distinct enough to commit two
// separate results.
func chaosSpecs() []schema.JobSpec {
	a := schema.JobSpec{
		Name: "chaos-a", Seed: 7, RateMbps: 5, BufferBytes: 16384, DurationS: 0.25,
		Flows: []schema.FlowGroup{{CCA: "reno", RTTMs: 20, Count: 1}},
	}
	b := a
	b.Name, b.Seed = "chaos-b", 11
	b.Flows = []schema.FlowGroup{{CCA: "cubic", RTTMs: 40, Count: 1}}
	return []schema.JobSpec{a, b}
}

func chaosServerConfig(dir string, fsys store.FS) serverConfig {
	return serverConfig{
		out:     dir,
		workers: 2,
		slots:   8,
		// Short TTL so a killed predecessor's leases go stale fast; the
		// test also backdates them so reboots never sleep.
		leaseTTL:       2 * time.Second,
		leaseHeartbeat: 200 * time.Millisecond,
		minDeadline:    30 * time.Second,
		drainTimeout:   5 * time.Second,
		// A chaos kill makes jobs fail with FS errors; that must never
		// read as a poisoned config.
		breakerAfter: 1000,
		fsys:         fsys,
		stderr:       io.Discard,
	}
}

// storeFingerprint hashes the committed result set: sorted keys, each
// with the SHA-256 of its payload. Two directories with equal
// fingerprints hold byte-identical results.
func storeFingerprint(t *testing.T, dir string) string {
	t.Helper()
	st, err := store.OpenFS(filepath.Join(dir, "store"), store.OSFS())
	if err != nil {
		t.Fatalf("open store %s: %v", dir, err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatalf("store keys: %v", err)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		data, err := st.Get(k)
		if err != nil {
			t.Fatalf("store get %s: %v", k, err)
		}
		fmt.Fprintf(h, "%s %x\n", k, sha256.Sum256(data))
	}
	return fmt.Sprintf("%d:%x", len(keys), h.Sum(nil))
}

// doneOpsPerKey scans every journal segment (tolerating torn tails) and
// counts OpDone records per result key — the exactly-once ledger.
func doneOpsPerKey(t *testing.T, dir string) map[string]int {
	t.Helper()
	counts := map[string]int{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "journal") || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			var rec store.JournalRecord
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue // torn tail
			}
			if rec.Op == store.OpDone {
				counts[rec.Key]++
			}
		}
	}
	return counts
}

// backdateLeases ages every lease file in dir past any TTL, standing in
// for the wall-clock time a real operator would wait after a crash.
func backdateLeases(t *testing.T, dir string) {
	t.Helper()
	old := time.Now().Add(-time.Hour)
	files, err := filepath.Glob(filepath.Join(dir, "leases", "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := os.Chtimes(f, old, old); err != nil && !os.IsNotExist(err) {
			t.Fatalf("backdate %s: %v", f, err)
		}
	}
}

// quiesce polls the batch until no member is mid-flight (running), or
// the window closes — a killed server's jobs settle quickly, but jobs
// it never started may stay queued forever, which is fine.
func quiesce(s *server, batch string, window time.Duration) {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		running := 0
		for _, k := range s.batches[batch] {
			if j, ok := s.jobs[k]; ok && j.status.State == schema.JobRunning {
				running++
			}
		}
		s.mu.Unlock()
		if running == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// cleanCycle runs the full request→journal→execute→store path on a
// pristine directory and returns its store fingerprint — the reference
// every chaos recovery must reproduce byte for byte.
func cleanCycle(t *testing.T, dir string, fsys store.FS) string {
	t.Helper()
	s, err := newServer(chaosServerConfig(dir, fsys))
	if err != nil {
		t.Fatalf("clean boot: %v", err)
	}
	resp, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("clean submit: %d: %s", rr.Code, rr.Body.String())
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	for _, j := range final.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("clean run: job %s is %s (%s)", j.Name, j.State, j.Error)
		}
	}
	s.Drain()
	return storeFingerprint(t, dir)
}

// TestSubmitJournalFailureMidBatch pins the rollback accounting: when a
// journal append dies partway through a batch commit, only the members
// never journaled-and-queued may have their footprints released. The
// committed ones still run and release their own footprints at
// completion — releasing them in the rollback too would double-release
// and let the pool over-admit past -slots. The invariant checked at
// every kill point: pool depth equals the number of jobs in the queue.
func TestSubmitJournalFailureMidBatch(t *testing.T) {
	specs := chaosSpecs()
	c := specs[0]
	c.Name, c.Seed = "chaos-c", 13
	specs = append(specs, c)

	// Probe a healthy boot+submit to learn which op window the commit
	// loop's appends occupy.
	probe := chaostest.Wrap(store.OSFS(), chaostest.Plan{})
	pcfg := chaosServerConfig(t.TempDir(), probe)
	pcfg.workers = 0
	ps, err := newServer(pcfg)
	if err != nil {
		t.Fatalf("probe boot: %v", err)
	}
	bootOps := probe.Ops()
	if _, rr := submit(t, ps, specs...); rr.Code != http.StatusCreated {
		t.Fatalf("probe submit: %d: %s", rr.Code, rr.Body.String())
	}
	submitOps := probe.Ops() - bootOps
	ps.Drain()
	if submitOps == 0 {
		t.Fatal("probe submit crossed no FS boundaries")
	}

	for k := bootOps + 1; k <= bootOps+submitOps; k++ {
		cfs := chaostest.Wrap(store.OSFS(), chaostest.Plan{KillAt: k, TornBytes: 3})
		cfg := chaosServerConfig(t.TempDir(), cfs)
		cfg.workers = 0
		s, err := newServer(cfg)
		if err != nil {
			continue // the kill landed inside boot; nothing to check
		}
		_, rr := submit(t, s, specs...)
		s.mu.Lock()
		queued, depth := len(s.queue), s.pool.Depth()
		s.mu.Unlock()
		if depth != queued {
			t.Errorf("kill@%d: pool depth %d != %d queued jobs (submit returned %d)",
				k, depth, queued, rr.Code)
		}
		s.Drain()
	}
}

// TestChaosKillEveryBoundary is the crash-recovery acceptance test: it
// learns the syscall-op budget of one uninterrupted serve cycle, then
// for every boundary k kills the server's filesystem mid-cycle at op k,
// reboots over the same directory, resubmits, and requires the final
// store to be byte-identical to the uninterrupted reference with at
// most one OpDone journal record per result — exactly-once execution
// under a SIGKILL at any instant of the commit path.
func TestChaosKillEveryBoundary(t *testing.T) {
	reference := cleanCycle(t, t.TempDir(), store.OSFS())

	// Probe the op budget with a chaos FS that never kills.
	probe := chaostest.Wrap(store.OSFS(), chaostest.Plan{})
	if got := cleanCycle(t, t.TempDir(), probe); got != reference {
		t.Fatalf("probe cycle fingerprint %s != reference %s", got, reference)
	}
	budget := probe.Ops()
	if budget == 0 {
		t.Fatal("probe counted no FS operations")
	}
	stride := uint64(1)
	if testing.Short() {
		stride = 7
	}
	t.Logf("op budget %d (stride %d)", budget, stride)

	for k := uint64(1); k <= budget; k += stride {
		k := k
		t.Run(fmt.Sprintf("kill@%d", k), func(t *testing.T) {
			dir := t.TempDir()
			cfs := chaostest.Wrap(store.OSFS(), chaostest.Plan{KillAt: k, TornBytes: 7})

			// Phase A: a server that will die at op k. Every outcome is
			// legitimate here — failed boot, refused submit, failed jobs
			// — as long as phase B recovers.
			if a, err := newServer(chaosServerConfig(dir, cfs)); err == nil {
				resp, rr := submit(t, a, chaosSpecs()...)
				if rr.Code == http.StatusCreated {
					quiesce(a, resp.Batch, 3*time.Second)
				}
				a.Drain()
			}

			// Phase B: reboot over the same directory on a healthy
			// filesystem and resubmit. Recovery must be total.
			backdateLeases(t, dir)
			b, err := newServer(chaosServerConfig(dir, store.OSFS()))
			if err != nil {
				t.Fatalf("reboot after kill@%d: %v", k, err)
			}
			defer b.Drain()
			resp, rr := submit(t, b, chaosSpecs()...)
			if rr.Code != http.StatusCreated {
				t.Fatalf("resubmit after kill@%d: %d: %s", k, rr.Code, rr.Body.String())
			}
			final := waitBatch(t, b, resp.Batch, 30*time.Second)
			for _, j := range final.Jobs {
				if j.State != schema.JobDone {
					t.Fatalf("kill@%d: job %s ended %s (%s), want done", k, j.Name, j.State, j.Error)
				}
			}
			b.Drain()

			if got := storeFingerprint(t, dir); got != reference {
				t.Errorf("kill@%d: store fingerprint %s != uninterrupted reference %s", k, got, reference)
			}
			for key, n := range doneOpsPerKey(t, dir) {
				if n > 1 {
					t.Errorf("kill@%d: %d OpDone records for %s, want at most 1", k, n, key)
				}
			}
		})
	}
}
