package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// fleetConfig selects process-isolated execution: each attempt runs in
// a worker subprocess (this binary re-exec'd with -worker) under an
// estimator-derived RLIMIT_AS ceiling, supervised with crash-loop
// backoff, poison quarantine, and straggler hedging. A nil fleetConfig
// on serverConfig keeps the original in-process goroutine execution —
// which is also the benchmark baseline the fleet is measured against.
type fleetConfig struct {
	// poisonAfter is the number of worker deaths (per job) that poisons
	// the config: it is refused from then on, even across reboots, until
	// an operator clears its poison record.
	poisonAfter int
	// backoffBase and backoffMax shape the crash-loop respawn delay:
	// base doubling per strike, capped at max.
	backoffBase time.Duration
	backoffMax  time.Duration
	// hedgeFactor × estimated wall (floored at hedgeFloor) is how long a
	// primary may run before a duplicate worker is hedged against it.
	// Determinism makes the duplicate byte-identical, and the store's
	// idempotent Put makes first-commit-wins safe. Negative disables.
	hedgeFactor float64
	hedgeFloor  time.Duration
	// memCap, when positive, clamps every worker's derived RLIMIT_AS —
	// the operator's "no worker maps more than N bytes" knob.
	memCap int64
	// hangGrace is the supervisor-side margin past the worker's own
	// deadline before it SIGTERMs a wedged worker.
	hangGrace time.Duration
	// argv is the worker command; defaults to re-execing this binary
	// with -worker. Tests point it at the test binary plus an env switch.
	argv []string
	// env is appended to the workers' inherited environment.
	env []string
}

func (c *fleetConfig) withDefaults() error {
	if c.poisonAfter < 1 {
		c.poisonAfter = 3
	}
	if c.backoffBase <= 0 {
		c.backoffBase = 500 * time.Millisecond
	}
	if c.backoffMax <= 0 {
		c.backoffMax = 10 * time.Second
	}
	if c.hedgeFactor == 0 {
		c.hedgeFactor = 2
	}
	if c.hedgeFloor <= 0 {
		c.hedgeFloor = 10 * time.Second
	}
	if c.hangGrace <= 0 {
		c.hangGrace = 15 * time.Second
	}
	if len(c.argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("ccserve: locating own binary for worker re-exec: %w", err)
		}
		c.argv = []string{exe, "-worker"}
	}
	return nil
}

// fleetState is the supervisor's runtime view of its worker fleet.
type fleetState struct {
	cfg     fleetConfig
	poisons *store.Poisons
	seq     atomic.Uint64 // unique lease-owner suffix per spawn
	mu      sync.Mutex
	workers map[int]schema.WorkerHealth // live workers by PID
}

func (f *fleetState) register(w schema.WorkerHealth) {
	f.mu.Lock()
	f.workers[w.PID] = w
	f.mu.Unlock()
}

func (f *fleetState) unregister(pid int) {
	f.mu.Lock()
	delete(f.workers, pid)
	f.mu.Unlock()
}

// list snapshots the live workers for /healthz.
func (f *fleetState) list() []schema.WorkerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	ws := make([]schema.WorkerHealth, 0, len(f.workers))
	for _, w := range f.workers {
		ws = append(ws, w)
	}
	return ws
}

// fleetCounters snapshots the lifecycle counters for /healthz.
func (s *server) fleetCounters() *schema.FleetHealth {
	return &schema.FleetHealth{
		Spawns:   s.reg.Counter("fleet_spawns").Load(),
		Exits:    s.reg.Counter("fleet_exits").Load(),
		Restarts: s.reg.Counter("fleet_restarts").Load(),
		Hedges:   s.reg.Counter("fleet_hedges").Load(),
		Poisoned: s.reg.Counter("fleet_poisoned").Load(),
	}
}

// spawnRes is one worker process's verdict: an outcome it wrote, or
// the crash that ate it.
type spawnRes struct {
	outcome *schema.WorkerOutcome
	err     error
}

// spawnWorker runs one worker subprocess to completion: payload in via
// stdin, outcome out via stdout, stderr buffered and forwarded in one
// write. A context cancellation SIGTERMs the worker (checkpoint), with
// a SIGKILL backstop after WaitDelay. On a crash the dead worker's
// lease slot is released immediately — waitpid proved the owner dead,
// so the respawn need not wait out the TTL.
func (s *server) spawnWorker(ctx context.Context, j *job, slot int, deadline time.Duration, memLimit int64) spawnRes {
	f := s.fleet
	owner := fmt.Sprintf("%s-w%d", s.owner, f.seq.Add(1))
	payload, err := json.Marshal(schema.WorkerJob{
		SchemaVersion: schema.Version,
		Out:           s.cfg.out,
		Spec:          j.spec,
		Key:           j.key,
		Slot:          slot,
		Owner:         owner,
		Retries:       s.cfg.retries,
		MemLimitBytes: memLimit,
		DeadlineMs:    float64(deadline) / float64(time.Millisecond),
		LeaseTTLMs:    float64(s.cfg.leaseTTL) / float64(time.Millisecond),
		HeartbeatMs:   float64(s.cfg.leaseHeartbeat) / float64(time.Millisecond),
	})
	if err != nil {
		return spawnRes{err: err}
	}

	cmd := exec.CommandContext(ctx, f.cfg.argv[0], f.cfg.argv[1:]...)
	cmd.Env = append(os.Environ(), f.cfg.env...)
	cmd.Stdin = bytes.NewReader(payload)
	var stdout, errlog bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &errlog
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = 3 * time.Second

	if err := cmd.Start(); err != nil {
		return spawnRes{err: fmt.Errorf("spawn: %w", err)}
	}
	pid := cmd.Process.Pid
	s.reg.Counter("fleet_spawns").Inc()
	// runs_started mirrors what in-process execution counts through run
	// telemetry: simulations launched. The sim now runs out-of-process,
	// so the supervisor counts the launch itself.
	s.reg.Counter("runs_started").Inc()
	f.register(schema.WorkerHealth{PID: pid, Job: j.spec.Name, Key: j.key, Slot: slot})
	werr := cmd.Wait()
	f.unregister(pid)
	s.reg.Counter("fleet_exits").Inc()
	if errlog.Len() > 0 {
		fmt.Fprintf(s.cfg.stderr, "ccserve: worker %d (%s): %s", pid, j.spec.Name, errlog.Bytes())
	}

	if o := parseOutcome(stdout.Bytes()); o != nil {
		return spawnRes{outcome: o}
	}
	desc := "exited without an outcome"
	if werr != nil {
		desc = werr.Error()
	}
	if err := s.leases.ReleaseOwned(store.SlotName(j.spec.Name, slot), owner); err != nil {
		fmt.Fprintf(s.cfg.stderr, "ccserve: releasing dead worker %d lease: %v\n", pid, err)
	}
	return spawnRes{err: fmt.Errorf("worker pid %d: %s", pid, desc)}
}

// parseOutcome finds the worker's outcome line in its stdout, scanning
// from the end so stray prints cannot shadow the verdict.
func parseOutcome(out []byte) *schema.WorkerOutcome {
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	for i := len(lines) - 1; i >= 0; i-- {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 {
			continue
		}
		var o schema.WorkerOutcome
		if json.Unmarshal(line, &o) != nil {
			continue
		}
		switch o.State {
		case schema.WorkerDone, schema.WorkerFailed, schema.WorkerCheckpoint:
			return &o
		}
	}
	return nil
}

// fleetAttempt runs one attempt of a job, hedging a duplicate worker
// against a straggling primary. The first worker to deliver an outcome
// wins; its sibling is cancelled and reaped. Both crashing is one
// crash (one strike) — the attempt failed once, however many processes
// it burned.
func (s *server) fleetAttempt(j *job, deadline time.Duration, memLimit int64) spawnRes {
	f := s.fleet
	ctx, cancel := context.WithTimeout(s.runCtx, deadline+f.cfg.hangGrace)
	defer cancel()
	results := make(chan spawnRes, 2)
	launch := func(slot int) {
		go func() { results <- s.spawnWorker(ctx, j, slot, deadline, memLimit) }()
	}
	launch(0)
	outstanding := 1

	var hedgeC <-chan time.Time
	if f.cfg.hedgeFactor > 0 {
		delay := time.Duration(f.cfg.hedgeFactor * float64(j.fp.Wall))
		if delay < f.cfg.hedgeFloor {
			delay = f.cfg.hedgeFloor
		}
		if delay < deadline+f.cfg.hangGrace {
			t := time.NewTimer(delay)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var lastCrash spawnRes
	for {
		select {
		case r := <-results:
			outstanding--
			if r.outcome != nil {
				cancel()
				for outstanding > 0 {
					<-results
					outstanding--
				}
				return r
			}
			lastCrash = r
			if outstanding == 0 {
				return lastCrash
			}
		case <-hedgeC:
			hedgeC = nil
			s.reg.Counter("fleet_hedges").Inc()
			launch(1)
			outstanding++
		}
	}
}

// runJobFleet is runJob for fleet mode: same journal protocol, same
// cache fast-path, same terminal bookkeeping — but the execution is a
// supervised worker subprocess, and a new failure domain (the process
// dying without a verdict) feeds crash-loop backoff and, past the
// strike limit, poison quarantine.
func (s *server) runJobFleet(j *job) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(s.cfg.stderr, "ccserve: job %s: supervisor panic: %v\n%s", j.spec.Name, r, debug.Stack())
			s.mu.Lock()
			s.jobFailed(j, fmt.Sprintf("supervisor panic: %v", r))
			s.mu.Unlock()
		}
	}()
	f := s.fleet

	// A poisoned config never spawns a process — the strikes already
	// cost three of them.
	if rec, ok := f.poisons.Get(j.key); ok {
		s.mu.Lock()
		s.jobPoisoned(j, fmt.Sprintf("config poisoned after %d worker crashes: %s", rec.Strikes, rec.Reason))
		s.mu.Unlock()
		return
	}

	// Serve from the store before spawning; same exactly-once reasoning
	// as runJob's fast path.
	if s.st.Has(j.key) {
		s.mu.Lock()
		j.status.Cached = true
		detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, schema.JobDone, "")})
		s.journalTerminal(store.OpCached, j, detail)
		s.pool.Release(j.fp)
		s.transition(j, schema.JobDone, "")
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	j.attempts++
	detail, _ := json.Marshal(queuedDetail{Spec: j.spec})
	if err := s.jnl.Append(store.JournalRecord{
		Op: store.OpClaimed, Job: j.spec.Name, Key: j.key,
		Owner: s.owner, Gen: j.gen, Detail: detail,
	}); err != nil {
		s.jobFailed(j, "journal: "+err.Error())
		s.mu.Unlock()
		return
	}
	s.transition(j, schema.JobRunning, "")
	s.mu.Unlock()

	deadline := j.deadline(s.cfg.deadlineFactor, s.cfg.minDeadline)
	memLimit := budget.WorkerMemLimit(j.fp, f.cfg.memCap)

	checkpoint := func() {
		s.mu.Lock()
		j.status.State = schema.JobQueued
		s.mu.Unlock()
	}

	crashes := 0
	for {
		res := s.fleetAttempt(j, deadline, memLimit)
		if res.outcome != nil {
			o := res.outcome
			switch o.State {
			case schema.WorkerDone:
				s.mu.Lock()
				j.failures = 0
				j.status.WallMs = o.WallMs
				j.status.Cached = o.Cached
				op := store.OpDone
				if o.Cached {
					op = store.OpCached
				}
				detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, schema.JobDone, "")})
				s.journalTerminal(op, j, detail)
				s.pool.Release(j.fp)
				s.transition(j, schema.JobDone, "")
				s.mu.Unlock()
				return
			case schema.WorkerCheckpoint:
				if s.isDraining() || s.runCtx.Err() != nil {
					// Drain: the pending journal records stand and the job
					// re-runs at next boot, same as in-process.
					checkpoint()
					return
				}
				// A checkpoint outside a drain means something external
				// terminated the worker (or the hang guard fired). The run
				// committed nothing; treat it as a crash and respawn.
				res.err = fmt.Errorf("worker checkpointed outside a drain")
			default:
				s.mu.Lock()
				s.jobFailed(j, o.Error)
				s.mu.Unlock()
				return
			}
		}

		crashes++
		reason := "worker crashed"
		if res.err != nil {
			reason = res.err.Error()
		}
		if crashes >= f.cfg.poisonAfter {
			rec := store.PoisonRecord{Key: j.key, Job: j.spec.Name, Reason: reason, Strikes: crashes}
			if err := f.poisons.Mark(rec); err != nil {
				fmt.Fprintf(s.cfg.stderr, "ccserve: marking poison %s: %v\n", j.key, err)
			}
			s.reg.Counter("fleet_poisoned").Inc()
			s.mu.Lock()
			s.jobPoisoned(j, fmt.Sprintf("poisoned after %d worker crashes: %s", crashes, reason))
			s.mu.Unlock()
			return
		}
		s.reg.Counter("fleet_restarts").Inc()
		fmt.Fprintf(s.cfg.stderr, "ccserve: job %s: %s (strike %d/%d), backing off\n",
			j.spec.Name, reason, crashes, f.cfg.poisonAfter)
		wait := f.cfg.backoffBase << (crashes - 1)
		if wait <= 0 || wait > f.cfg.backoffMax {
			wait = f.cfg.backoffMax
		}
		select {
		case <-s.drainCh:
			checkpoint()
			return
		case <-s.runCtx.Done():
			checkpoint()
			return
		case <-time.After(wait):
		}
	}
}

// jobPoisoned records the poison terminal: journal, pool release,
// transition. The caller holds s.mu and has already persisted the
// poison record when one is owed.
func (s *server) jobPoisoned(j *job, msg string) {
	detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, schema.JobPoisoned, msg)})
	s.journalTerminal(store.OpPoisoned, j, detail)
	s.pool.Release(j.fp)
	s.transition(j, schema.JobPoisoned, msg)
}

// isDraining reports the drain flag under the lock.
func (s *server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
