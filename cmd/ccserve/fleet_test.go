package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"ccatscale/internal/schema"
	"ccatscale/internal/store"
	"ccatscale/internal/store/chaostest"
)

// TestMain doubles as the worker binary: fleet tests point the
// supervisor's argv at this test executable, and CCSERVE_TEST_WORKER=1
// routes the subprocess into testWorkerMain instead of the test runner.
// This is how the suite exercises real process boundaries — real fork/
// exec, real SIGKILL, real RLIMIT_AS — without shipping a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("CCSERVE_TEST_WORKER") == "1" {
		os.Exit(testWorkerMain())
	}
	os.Exit(m.Run())
}

// testWorkerMain is workerRun plus fault-injection hooks, each keyed by
// an environment variable the spawning test sets:
//
//	CCSERVE_TEST_CRASH_JOB    die (exit 7) before running the named job
//	CCSERVE_TEST_STALL_JOB    named job's slot-0 worker sleeps
//	CCSERVE_TEST_STALL_MS     ... this long before starting
//	CCSERVE_TEST_ANNOUNCE_DIR drop a pid file and linger so the test can
//	                          aim a signal at a live mid-job worker
//	CCSERVE_TEST_KILL_AT      SIGKILL-equivalent (exit 137) at the Nth
//	                          filesystem mutation, via the chaos FS
//	CCSERVE_TEST_KILL_MARK    arm the kill only in the first worker to
//	                          O_EXCL-create this file (one shot per dir)
func testWorkerMain() int {
	payload, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "test worker: reading stdin: %v\n", err)
		return 3
	}
	var wj schema.WorkerJob
	if err := json.Unmarshal(payload, &wj); err != nil {
		fmt.Fprintf(os.Stderr, "test worker: decoding payload: %v\n", err)
		return 3
	}

	if name := os.Getenv("CCSERVE_TEST_CRASH_JOB"); name != "" && wj.Spec.Name == name {
		os.Exit(7)
	}
	if name := os.Getenv("CCSERVE_TEST_STALL_JOB"); name != "" && wj.Spec.Name == name && wj.Slot == 0 {
		ms, _ := strconv.Atoi(os.Getenv("CCSERVE_TEST_STALL_MS"))
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	if dir := os.Getenv("CCSERVE_TEST_ANNOUNCE_DIR"); dir != "" {
		pid := os.Getpid()
		name := filepath.Join(dir, fmt.Sprintf("worker-%d.pid", pid))
		_ = os.WriteFile(name, []byte(strconv.Itoa(pid)), 0o644)
		// Linger long enough for the test to read the pid and deliver its
		// signal while the job is verifiably mid-flight.
		time.Sleep(250 * time.Millisecond)
	}

	fsys := store.FS(store.OSFS())
	if at := os.Getenv("CCSERVE_TEST_KILL_AT"); at != "" {
		kill, _ := strconv.ParseUint(at, 10, 64)
		armed := kill > 0
		if mark := os.Getenv("CCSERVE_TEST_KILL_MARK"); mark != "" && armed {
			f, err := os.OpenFile(mark, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				armed = false // a predecessor already spent the kill
			} else {
				f.Close()
			}
		}
		if armed {
			fsys = chaostest.Wrap(store.OSFS(), chaostest.Plan{
				KillAt: kill,
				OnKill: func() { os.Exit(137) },
			})
		}
	}
	return workerRun(fsys, bytes.NewReader(payload), os.Stdout, os.Stderr)
}

// fleetTestConfig is chaosServerConfig with a worker fleet pointed at
// this test binary, tuned for test speed: tight lease TTL, millisecond
// crash backoff, hedging off unless the test opts in.
func fleetTestConfig(dir string, env ...string) serverConfig {
	cfg := chaosServerConfig(dir, store.OSFS())
	cfg.leaseTTL = time.Second
	cfg.leaseHeartbeat = 100 * time.Millisecond
	cfg.fleet = &fleetConfig{
		poisonAfter: 3,
		backoffBase: 10 * time.Millisecond,
		backoffMax:  50 * time.Millisecond,
		hedgeFactor: -1,
		argv:        []string{os.Args[0]},
		env:         append([]string{"CCSERVE_TEST_WORKER=1"}, env...),
	}
	return cfg
}

func getHealth(t *testing.T, s *server) schema.HealthResponse {
	t.Helper()
	var h schema.HealthResponse
	do(t, s, "GET", "/healthz", nil, &h)
	return h
}

// journalOpsForKey counts journal records per op for one key, across
// every segment, tolerating torn tails.
func journalOpsForKey(t *testing.T, dir, key string) map[string]int {
	t.Helper()
	counts := map[string]int{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "journal") || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			var rec store.JournalRecord
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue
			}
			if rec.Key == key {
				counts[rec.Op]++
			}
		}
	}
	return counts
}

// TestFleetRunsBatchMatchesInprocess is the fleet's baseline contract:
// the same batch, executed in worker subprocesses, commits results
// byte-identical to in-process execution, reports its fleet through
// /healthz, and serves resubmissions from the store without spawning.
func TestFleetRunsBatchMatchesInprocess(t *testing.T) {
	ref := cleanCycle(t, t.TempDir(), store.OSFS())

	dir := t.TempDir()
	s, err := newServer(fleetTestConfig(dir))
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}
	defer s.Drain()

	resp, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	for _, j := range final.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("job %s is %s (%s)", j.Name, j.State, j.Error)
		}
		if j.Cached {
			t.Fatalf("job %s reported cached on a pristine store", j.Name)
		}
	}
	if got := storeFingerprint(t, dir); got != ref {
		t.Fatalf("fleet results diverge from in-process:\n fleet      %s\n in-process %s", got, ref)
	}

	h := getHealth(t, s)
	if !h.Live || !h.Ready {
		t.Fatalf("healthz after batch: live=%v ready=%v", h.Live, h.Ready)
	}
	if h.Fleet == nil {
		t.Fatal("healthz: no fleet block on a fleet server")
	}
	if h.Fleet.Spawns < 2 {
		t.Fatalf("fleet spawns = %d, want ≥2 (one per job)", h.Fleet.Spawns)
	}
	if h.Fleet.Spawns != h.Fleet.Exits {
		t.Fatalf("spawns %d != exits %d with no live workers", h.Fleet.Spawns, h.Fleet.Exits)
	}
	if len(h.Workers) != 0 {
		t.Fatalf("healthz lists %d live workers after quiesce", len(h.Workers))
	}

	// Resubmission dedupes against the terminal jobs: no process spawns.
	spawnsBefore := h.Fleet.Spawns
	resp2, rr2 := submit(t, s, chaosSpecs()...)
	if rr2.Code != http.StatusCreated {
		t.Fatalf("resubmit: %d: %s", rr2.Code, rr2.Body.String())
	}
	for _, j := range resp2.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("resubmitted job %s is %s", j.Name, j.State)
		}
	}
	if h2 := getHealth(t, s); h2.Fleet.Spawns != spawnsBefore {
		t.Fatalf("resubmit spawned workers: %d -> %d", spawnsBefore, h2.Fleet.Spawns)
	}
}

// TestFleetCrashLoopPoisons drives one config's worker into a crash
// loop (exit 7 before doing any work) and pins the quarantine protocol:
// three strikes with backoff, then a poison record, a structured
// poisoned terminal, and refusal — in this server, across resubmission,
// and across a reboot — while the healthy config in the same batch is
// untouched.
func TestFleetCrashLoopPoisons(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(fleetTestConfig(dir, "CCSERVE_TEST_CRASH_JOB=chaos-a"))
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}

	resp, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	var poisonedKey string
	for _, j := range final.Jobs {
		switch j.Name {
		case "chaos-a":
			if j.State != schema.JobPoisoned {
				t.Fatalf("crash-loop job is %s (%s), want poisoned", j.State, j.Error)
			}
			if !strings.Contains(j.Error, "3 worker crashes") {
				t.Fatalf("poison error does not carry the strike count: %q", j.Error)
			}
			poisonedKey = j.Key
		case "chaos-b":
			if j.State != schema.JobDone {
				t.Fatalf("healthy job alongside a crash loop is %s (%s)", j.State, j.Error)
			}
		}
	}

	h := getHealth(t, s)
	if h.Fleet.Restarts != 2 || h.Fleet.Poisoned != 1 {
		t.Fatalf("fleet counters: restarts=%d poisoned=%d, want 2 and 1", h.Fleet.Restarts, h.Fleet.Poisoned)
	}
	poisons, err := store.OpenPoisonsFS(store.OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := poisons.Get(poisonedKey)
	if !ok {
		t.Fatalf("no poison record for %s", poisonedKey)
	}
	if rec.Strikes != 3 {
		t.Fatalf("poison strikes = %d, want 3", rec.Strikes)
	}

	// Resubmitting a poisoned config spends no processes.
	spawnsBefore := h.Fleet.Spawns
	resp2, _ := submit(t, s, chaosSpecs()[0])
	if st := resp2.Jobs[0].State; st != schema.JobPoisoned {
		t.Fatalf("resubmitted poisoned config is %s, want poisoned", st)
	}
	if h2 := getHealth(t, s); h2.Fleet.Spawns != spawnsBefore {
		t.Fatalf("resubmitting a poisoned config spawned a worker")
	}
	s.Drain()

	// The poison survives reboot: the record outlives the journal state.
	s2, err := newServer(fleetTestConfig(dir))
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer s2.Drain()
	resp3, _ := submit(t, s2, chaosSpecs()[0])
	if st := resp3.Jobs[0].State; st != schema.JobPoisoned {
		t.Fatalf("after reboot, poisoned config is %s, want poisoned", st)
	}
	if h3 := getHealth(t, s2); h3.Fleet.Spawns != 0 {
		t.Fatalf("rebooted server spawned %d workers for a poisoned config", h3.Fleet.Spawns)
	}
}

// TestFleetBootResolvesPoisonedBacklog covers the recovery corner: a
// job checkpointed as pending in the journal whose config was poisoned
// before the reboot must resolve to poisoned at boot — not re-queue
// every boot forever — with the pool ledger balanced.
func TestFleetBootResolvesPoisonedBacklog(t *testing.T) {
	dir := t.TempDir()
	cfg := fleetTestConfig(dir, "CCSERVE_TEST_CRASH_JOB=chaos-a")
	// Slow the crash loop so the drain lands mid-backoff, leaving the
	// job pending rather than poisoned.
	cfg.fleet.backoffBase = 10 * time.Second
	cfg.fleet.backoffMax = 10 * time.Second
	cfg.drainTimeout = 100 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	spec := chaosSpecs()[0]
	key := mustBuildJob(t, spec).key
	resp, rr := submit(t, s, spec)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	// Wait for the first crash (one spawn, one exit), then drain while
	// the supervisor sits in backoff: the job checkpoints as queued.
	deadline := time.Now().Add(10 * time.Second)
	for getHealth(t, s).Fleet.Exits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never crashed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Drain()
	var st schema.JobStatus
	do(t, s, "GET", "/v1/jobs/"+key, nil, &st)
	if st.State != schema.JobQueued {
		t.Fatalf("after drain mid-backoff, job is %s, want queued", st.State)
	}
	_ = resp

	// Poison arrives between the two lives (an operator marking it, or
	// a sibling server's strikes).
	poisons, err := store.OpenPoisonsFS(store.OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := poisons.Mark(store.PoisonRecord{Key: key, Job: spec.Name, Reason: "marked between boots", Strikes: 3}); err != nil {
		t.Fatal(err)
	}

	s2, err := newServer(fleetTestConfig(dir))
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer s2.Drain()
	var st2 schema.JobStatus
	do(t, s2, "GET", "/v1/jobs/"+key, nil, &st2)
	if st2.State != schema.JobPoisoned {
		t.Fatalf("recovered job is %s, want poisoned at boot", st2.State)
	}
	if h := getHealth(t, s2); h.Fleet.Spawns != 0 {
		t.Fatalf("boot-resolved poison spawned %d workers", h.Fleet.Spawns)
	}
	if ops := journalOpsForKey(t, dir, key); ops[store.OpPoisoned] == 0 {
		t.Fatal("boot resolution journaled no poisoned terminal")
	}
}

// TestFleetOOMKillsOnlyThatWorker is the fault-isolation acceptance
// test: a config whose queue ring wants ~10 GB runs under a 2.5 GiB
// RLIMIT_AS, so the allocation kills the worker process (Go runtime
// OOM abort), not the service. The config poisons after bounded
// retries; a small job in the same batch completes; the server stays
// live and ready throughout.
func TestFleetOOMKillsOnlyThatWorker(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("RLIMIT_AS containment is unix-only")
	}
	dir := t.TempDir()
	cfg := fleetTestConfig(dir)
	cfg.fleet.memCap = 2<<30 + 512<<20 // 2.5 GiB: above the runtime floor, far below the ring
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}
	defer s.Drain()

	huge := schema.JobSpec{
		// 48 GiB of buffer prices a ~10 GB packet ring — the estimator
		// admits it (no queue-heap budget here), the RLIMIT_AS does not.
		Name: "oom-ring", Seed: 3, RateMbps: 5, BufferBytes: 48 << 30, DurationS: 0.05,
		Flows: []schema.FlowGroup{{CCA: "reno", RTTMs: 20, Count: 1}},
	}
	small := chaosSpecs()[1]

	resp, rr := submit(t, s, huge, small)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	final := waitBatch(t, s, resp.Batch, 60*time.Second)
	for _, j := range final.Jobs {
		switch j.Name {
		case "oom-ring":
			if j.State != schema.JobPoisoned {
				t.Fatalf("OOM-scale config is %s (%s), want poisoned", j.State, j.Error)
			}
		case small.Name:
			if j.State != schema.JobDone {
				t.Fatalf("small job beside the OOM config is %s (%s)", j.State, j.Error)
			}
		}
	}
	h := getHealth(t, s)
	if !h.Live || !h.Ready {
		t.Fatalf("service unhealthy after contained OOM: live=%v ready=%v", h.Live, h.Ready)
	}
	if h.Fleet.Poisoned != 1 {
		t.Fatalf("fleet poisoned = %d, want 1", h.Fleet.Poisoned)
	}
}

// TestFleetHedgeRecoversStraggler stalls the primary worker far past
// the hedge trigger and proves the duplicate delivers: the job
// completes in hedge time (not primary-stall time), exactly one hedge
// is counted, no strike is charged, and the committed bytes match an
// unhedged run.
func TestFleetHedgeRecoversStraggler(t *testing.T) {
	ref := cleanCycle(t, t.TempDir(), store.OSFS())

	dir := t.TempDir()
	cfg := fleetTestConfig(dir,
		"CCSERVE_TEST_STALL_JOB=chaos-a",
		"CCSERVE_TEST_STALL_MS=60000",
	)
	cfg.fleet.hedgeFactor = 2
	// The floor must beat the 60s stall by a wide margin but sit far
	// above any honest worker's runtime (race-instrumented fork/exec of
	// the healthy sibling can take over a second), so exactly one hedge
	// fires no matter how slow the machine.
	cfg.fleet.hedgeFloor = 3 * time.Second
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}
	defer s.Drain()

	resp, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	start := time.Now()
	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	elapsed := time.Since(start)
	for _, j := range final.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("job %s is %s (%s)", j.Name, j.State, j.Error)
		}
	}
	if elapsed > 15*time.Second {
		t.Fatalf("batch took %v: the hedge did not rescue the stalled primary", elapsed)
	}
	if got := storeFingerprint(t, dir); got != ref {
		t.Fatalf("hedged results diverge from clean run:\n hedged %s\n clean  %s", got, ref)
	}
	h := getHealth(t, s)
	if h.Fleet.Hedges != 1 {
		t.Fatalf("fleet hedges = %d, want 1", h.Fleet.Hedges)
	}
	if h.Fleet.Restarts != 0 || h.Fleet.Poisoned != 0 {
		t.Fatalf("hedge charged strikes: restarts=%d poisoned=%d", h.Fleet.Restarts, h.Fleet.Poisoned)
	}
}

// TestFleetSIGKILLMidJobRestarts delivers a real SIGKILL to a live
// worker mid-job and proves fleet-level exactly-once: the supervisor
// restarts, the batch completes, the store matches an uninterrupted
// run byte for byte, and no key commits twice.
func TestFleetSIGKILLMidJobRestarts(t *testing.T) {
	ref := cleanCycle(t, t.TempDir(), store.OSFS())

	dir := t.TempDir()
	announce := t.TempDir()
	s, err := newServer(fleetTestConfig(dir, "CCSERVE_TEST_ANNOUNCE_DIR="+announce))
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}
	defer s.Drain()

	resp, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}

	// Kill the first worker to announce itself, while it lingers mid-job.
	deadline := time.Now().Add(10 * time.Second)
	killed := false
	for !killed {
		if time.Now().After(deadline) {
			t.Fatal("no worker announced itself")
		}
		pids, _ := filepath.Glob(filepath.Join(announce, "worker-*.pid"))
		if len(pids) > 0 {
			data, err := os.ReadFile(pids[0])
			if err == nil {
				pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
				if err == nil && pid > 0 {
					if err := syscall.Kill(pid, syscall.SIGKILL); err == nil {
						killed = true
					}
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	final := waitBatch(t, s, resp.Batch, 30*time.Second)
	for _, j := range final.Jobs {
		if j.State != schema.JobDone {
			t.Fatalf("job %s is %s (%s)", j.Name, j.State, j.Error)
		}
	}
	if got := storeFingerprint(t, dir); got != ref {
		t.Fatalf("post-SIGKILL results diverge:\n killed %s\n clean  %s", got, ref)
	}
	if h := getHealth(t, s); h.Fleet.Restarts < 1 {
		t.Fatalf("fleet restarts = %d after a SIGKILL, want ≥1", h.Fleet.Restarts)
	}
	for key, n := range doneOpsPerKey(t, dir) {
		if n > 1 {
			t.Fatalf("key %s has %d done records: double commit", key, n)
		}
	}
}

// TestFleetDrainCheckpointsRunningWorker drains while a worker is deep
// in a long simulation: the worker must answer the SIGTERM with a
// checkpoint outcome, and the supervisor must return the job to queued
// with its pending journal records standing — not fail it, not count a
// strike.
func TestFleetDrainCheckpointsRunningWorker(t *testing.T) {
	dir := t.TempDir()
	announce := t.TempDir()
	cfg := fleetTestConfig(dir, "CCSERVE_TEST_ANNOUNCE_DIR="+announce)
	cfg.drainTimeout = 200 * time.Millisecond
	cfg.minDeadline = 5 * time.Minute
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}

	long := schema.JobSpec{
		Name: "chaos-long", Seed: 5, RateMbps: 50, BufferBytes: 65536, DurationS: 3600,
		Flows: []schema.FlowGroup{{CCA: "reno", RTTMs: 20, Count: 2}},
	}
	key := mustBuildJob(t, long).key
	_, rr := submit(t, s, long)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}

	// Wait for the worker to announce, then give it time to get past its
	// linger and into the simulation proper before draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pids, _ := filepath.Glob(filepath.Join(announce, "worker-*.pid"))
		if len(pids) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never announced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(600 * time.Millisecond)

	s.Drain()
	var st schema.JobStatus
	do(t, s, "GET", "/v1/jobs/"+key, nil, &st)
	if st.State != schema.JobQueued {
		t.Fatalf("after drain, long job is %s (%s), want queued", st.State, st.Error)
	}
	ops := journalOpsForKey(t, dir, key)
	if ops[store.OpQueued] == 0 && ops[store.OpClaimed] == 0 {
		t.Fatal("checkpointed job left no pending journal record")
	}
	for _, terminal := range []string{store.OpDone, store.OpFailed, store.OpPoisoned, store.OpQuarantined} {
		if ops[terminal] != 0 {
			t.Fatalf("checkpointed job has a %s terminal", terminal)
		}
	}
	if h := getHealth(t, s); h.Fleet.Restarts != 0 || h.Fleet.Poisoned != 0 {
		t.Fatalf("drain charged strikes: restarts=%d poisoned=%d", h.Fleet.Restarts, h.Fleet.Poisoned)
	}
}

// TestFleetChaosKillEveryWorkerBoundary is the exhaustive fleet-level
// crash sweep: probe how many filesystem mutations one worker's
// successful run makes, then for every k in [1, N] boot a fresh fleet,
// SIGKILL (exit 137, mid-syscall via the chaos FS) the first worker to
// reach mutation k, and require full recovery — every job done, the
// store byte-identical to an uninterrupted run, and at most one done
// record per key.
func TestFleetChaosKillEveryWorkerBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive kill sweep")
	}
	// Probe: run one worker in-process over a chaos FS that never kills,
	// counting mutations.
	probeDir := t.TempDir()
	spec := chaosSpecs()[0]
	pj := mustBuildJob(t, spec)
	payload, err := json.Marshal(schema.WorkerJob{
		SchemaVersion: schema.Version, Out: probeDir, Spec: spec, Key: pj.key,
		Owner: "probe", DeadlineMs: 30000, LeaseTTLMs: 2000, HeartbeatMs: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos := chaostest.Wrap(store.OSFS(), chaostest.Plan{})
	var out bytes.Buffer
	if code := workerRun(chaos, bytes.NewReader(payload), &out, os.Stderr); code != 0 {
		t.Fatalf("probe worker exited %d: %s", code, out.String())
	}
	if o := parseOutcome(out.Bytes()); o == nil || o.State != schema.WorkerDone {
		t.Fatalf("probe worker outcome: %s", out.String())
	}
	total := chaos.Ops()
	if total < 3 {
		t.Fatalf("probe counted %d mutations; the chaos FS is not seeing the worker's writes", total)
	}
	t.Logf("worker run = %d filesystem mutations; sweeping kill points 1..%d", total, total)

	ref := cleanCycle(t, t.TempDir(), store.OSFS())

	for kill := uint64(1); kill <= total; kill++ {
		kill := kill
		t.Run(fmt.Sprintf("kill@%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			mark := filepath.Join(t.TempDir(), "armed")
			s, err := newServer(fleetTestConfig(dir,
				"CCSERVE_TEST_KILL_AT="+strconv.FormatUint(kill, 10),
				"CCSERVE_TEST_KILL_MARK="+mark,
			))
			if err != nil {
				t.Fatalf("fleet boot: %v", err)
			}
			defer s.Drain()

			resp, rr := submit(t, s, chaosSpecs()...)
			if rr.Code != http.StatusCreated {
				t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
			}
			final := waitBatch(t, s, resp.Batch, 60*time.Second)
			for _, j := range final.Jobs {
				if j.State != schema.JobDone {
					t.Fatalf("job %s is %s (%s)", j.Name, j.State, j.Error)
				}
			}
			if got := storeFingerprint(t, dir); got != ref {
				t.Fatalf("kill@%d diverges from clean run:\n chaos %s\n clean %s", kill, got, ref)
			}
			for key, n := range doneOpsPerKey(t, dir) {
				if n > 1 {
					t.Fatalf("kill@%d: key %s has %d done records", kill, key, n)
				}
			}
		})
	}
}
