package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// seedBacklog boots a throwaway server, submits the chaos batch, and
// drains before the jobs can finish, leaving the directory with pending
// journal records — the state a boot-time SIGTERM must preserve.
func seedBacklog(t *testing.T, dir string) {
	t.Helper()
	cfg := fleetTestConfig(dir, "CCSERVE_TEST_CRASH_JOB=chaos-a", "CCSERVE_TEST_STALL_JOB=chaos-b", "CCSERVE_TEST_STALL_MS=60000")
	// The crash job sits in a long backoff, the stalled job never
	// finishes: draining now checkpoints both as queued.
	cfg.fleet.backoffBase = time.Minute
	cfg.fleet.backoffMax = time.Minute
	cfg.drainTimeout = 100 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("seed boot: %v", err)
	}
	_, rr := submit(t, s, chaosSpecs()...)
	if rr.Code != http.StatusCreated {
		t.Fatalf("seed submit: %d: %s", rr.Code, rr.Body.String())
	}
	deadline := time.Now().Add(10 * time.Second)
	for getHealth(t, s).Fleet.Spawns < 2 {
		if time.Now().After(deadline) {
			t.Fatal("seed workers never spawned")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Drain()
	for _, spec := range chaosSpecs() {
		var st schema.JobStatus
		do(t, s, "GET", "/v1/jobs/"+mustBuildJob(t, spec).key, nil, &st)
		if st.State != schema.JobQueued {
			t.Fatalf("seed job %s is %s after drain, want queued", spec.Name, st.State)
		}
	}
}

// TestBootSIGTERMBeforeRecovery pins the earliest arm of the startup/
// drain race: the shutdown signal is already pending when newServer is
// called. Boot must refuse cleanly with errBootCanceled, release the
// singleton lease, and leave the journaled backlog recoverable — the
// next boot picks it up as if the canceled one never happened.
func TestBootSIGTERMBeforeRecovery(t *testing.T) {
	dir := t.TempDir()
	seedBacklog(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // signal landed before boot
	cfg := fleetTestConfig(dir)
	cfg.bootCtx = ctx
	if _, err := newServer(cfg); err != errBootCanceled {
		t.Fatalf("boot under a pending signal: err = %v, want errBootCanceled", err)
	}

	// The canceled boot must not hold the singleton: a healthy boot
	// right after must claim it without waiting out a stale TTL.
	start := time.Now()
	s, err := newServer(fleetTestConfig(dir))
	if err != nil {
		t.Fatalf("boot after canceled boot: %v", err)
	}
	defer s.Drain()
	if waited := time.Since(start); waited > 800*time.Millisecond {
		t.Fatalf("clean boot waited %v for the singleton: the canceled boot leaked its lease", waited)
	}
	// Both seeded jobs were recovered and now run unimpaired (no crash
	// or stall env on this server), proving the backlog survived.
	deadline := time.Now().Add(30 * time.Second)
	for {
		terminal := 0
		for _, spec := range chaosSpecs() {
			var st schema.JobStatus
			do(t, s, "GET", "/v1/jobs/"+mustBuildJob(t, spec).key, nil, &st)
			if st.State == schema.JobDone {
				terminal++
			} else if schema.JobTerminal(st.State) {
				t.Fatalf("recovered job %s resolved %s (%s)", spec.Name, st.State, st.Error)
			}
		}
		if terminal == len(chaosSpecs()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered backlog never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBootSIGTERMAfterRecovery drives the signal into the gap this PR
// closes: after journal replay re-queued the backlog but before any
// worker starts. bootHook is the deterministic stand-in for that
// timing. Boot must checkpoint — exit with errBootCanceled, run
// nothing, release the singleton — and the backlog must still be
// journaled for the next boot.
func TestBootSIGTERMAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	seedBacklog(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fleetTestConfig(dir)
	cfg.bootCtx = ctx
	cfg.bootHook = cancel // SIGTERM lands exactly between recovery and worker start
	if _, err := newServer(cfg); err != errBootCanceled {
		t.Fatalf("boot signaled after recovery: err = %v, want errBootCanceled", err)
	}

	// Nothing ran: the backlog still has pending records and no
	// terminals.
	for _, spec := range chaosSpecs() {
		key := mustBuildJob(t, spec).key
		ops := journalOpsForKey(t, dir, key)
		if ops[store.OpQueued] == 0 && ops[store.OpClaimed] == 0 {
			t.Fatalf("job %s lost its pending journal record", spec.Name)
		}
		for _, terminal := range []string{store.OpDone, store.OpFailed, store.OpPoisoned, store.OpQuarantined} {
			if ops[terminal] != 0 {
				t.Fatalf("canceled boot resolved job %s as %s", spec.Name, terminal)
			}
		}
	}

	s, err := newServer(fleetTestConfig(dir))
	if err != nil {
		t.Fatalf("boot after canceled boot: %v", err)
	}
	defer s.Drain()
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := 0
		for _, spec := range chaosSpecs() {
			var st schema.JobStatus
			do(t, s, "GET", "/v1/jobs/"+mustBuildJob(t, spec).key, nil, &st)
			if st.State == schema.JobDone {
				done++
			}
		}
		if done == len(chaosSpecs()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backlog did not complete after the interrupted boot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// syncBuf is a goroutine-safe buffer for capturing run()'s output while
// the test reads it concurrently.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunSIGTERMDrainsCleanly exercises the real signal path end to
// end: run() with a live listener receives an actual SIGTERM and must
// drain and exit 0. This pins the NotifyContext wiring the unit tests
// above only simulate.
func TestRunSIGTERMDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr syncBuf
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-addr", "localhost:0",
			"-out", dir,
			"-inprocess", // keep the worker argv out of the test binary
			"-drain-timeout", "2s",
		}, &stdout, &stderr)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stdout.String(), "listening on") {
		select {
		case c := <-code:
			t.Fatalf("run exited %d before listening:\n%s%s", c, stdout.String(), stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened:\n%s%s", stdout.String(), stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-SIGTERM: %v", err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0:\n%s%s", c, stdout.String(), stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after SIGTERM:\n%s%s", stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "drained, exiting") {
		t.Fatalf("run exited without draining:\n%s", stdout.String())
	}
}
