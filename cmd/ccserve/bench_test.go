package main

import (
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// benchBatchSize is how many distinct-seed jobs each benchmark
// iteration pushes through the server. Large enough to keep every
// worker busy, small enough that one iteration stays in the hundreds
// of milliseconds.
const benchBatchSize = 16

// benchSpecs builds one iteration's batch: tiny jobs (a quarter second
// of simulated time, one flow) whose seeds encode the iteration so no
// job ever dedupes against a predecessor — every submission must cost
// a real simulation run.
func benchSpecs(round int) []schema.JobSpec {
	specs := make([]schema.JobSpec, benchBatchSize)
	for i := range specs {
		seed := uint64(round*benchBatchSize + i + 1)
		specs[i] = schema.JobSpec{
			Name: fmt.Sprintf("bench-%d-%d", round, i), Seed: seed,
			RateMbps: 5, BufferBytes: 16384, DurationS: 0.25,
			Flows: []schema.FlowGroup{{CCA: "reno", RTTMs: 20, Count: 1}},
		}
	}
	return specs
}

// benchServe measures end-to-end served-job throughput: submit a
// batch, poll to terminal, repeat. The in-process and fleet variants
// share this body so the reported jobs/sec difference isolates the
// cost of process isolation — fork/exec, payload hand-off, outcome
// parse, per-worker lease traffic — against identical simulation work.
func benchServe(b *testing.B, fleet bool) {
	cfg := chaosServerConfig(b.TempDir(), store.OSFS())
	cfg.workers = 4
	cfg.slots = 2 * benchBatchSize // admission headroom: never backpressure the bench
	if fleet {
		cfg.leaseTTL = time.Second
		cfg.leaseHeartbeat = 100 * time.Millisecond
		cfg.fleet = &fleetConfig{
			poisonAfter: 3,
			backoffBase: 10 * time.Millisecond,
			backoffMax:  50 * time.Millisecond,
			hedgeFactor: -1, // hedging off: measure the straight path
			argv:        []string{os.Args[0]},
			env:         []string{"CCSERVE_TEST_WORKER=1"},
		}
	}
	s, err := newServer(cfg)
	if err != nil {
		b.Fatalf("boot: %v", err)
	}
	defer s.Drain()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, rr := submit(b, s, benchSpecs(i)...)
		if rr.Code != http.StatusCreated {
			b.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
		}
		got := waitBatch(b, s, resp.Batch, 2*time.Minute)
		for _, j := range got.Jobs {
			if j.State != schema.JobDone {
				b.Fatalf("job %s resolved %s: %s", j.Name, j.State, j.Error)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchSize)/b.Elapsed().Seconds(), "jobs/sec")
}

func BenchmarkServeInprocess(b *testing.B) { benchServe(b, false) }

func BenchmarkServeFleet(b *testing.B) { benchServe(b, true) }
