package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/schema"
	"ccatscale/internal/store"
	"ccatscale/internal/telemetry"
)

// serverConfig is everything a server needs besides its output
// directory's current contents. Tests construct it directly; main fills
// it from flags.
type serverConfig struct {
	out     string
	workers int
	// slots bounds the admission pool: queued-plus-running jobs, and
	// therefore the channel capacity and the journal growth per boot.
	slots int
	// queueBudget optionally bounds the aggregate *estimated* footprint
	// of admitted work (backpressure, not enforcement).
	queueBudget *budget.Budget
	// retries is the reduced-fidelity retry allowance per execution
	// attempt (the degradation ladder inside one RunManyCtx call).
	retries        int
	leaseTTL       time.Duration
	leaseHeartbeat time.Duration
	// deadlineFactor × estimated wall (floored at minDeadline) is each
	// job's wall-clock allowance.
	deadlineFactor float64
	minDeadline    time.Duration
	// breakerAfter is the consecutive-failure count that quarantines a
	// config hash.
	breakerAfter int
	// drainTimeout bounds how long SIGTERM waits for in-flight jobs
	// before cancelling their contexts and checkpointing them as queued.
	drainTimeout time.Duration
	// fleet selects process-isolated execution (see fleetConfig); nil
	// runs jobs on in-process goroutines as before.
	fleet *fleetConfig
	// bootCtx, when set, lets a shutdown signal interrupt boot recovery:
	// newServer checkpoints between boot phases and returns
	// errBootCanceled with the singleton released and the journal closed
	// — the WAL-first design means "checkpoint" is simply leaving the
	// pending records for the next boot.
	bootCtx context.Context
	// bootHook is a test seam invoked after recovery and before the
	// worker pool starts — the window the startup/drain race lives in.
	bootHook func()
	fsys     store.FS
	stderr   io.Writer
}

// withDefaults fills unset fields. workers may be explicitly zero — an
// accept-and-journal-only server, which tests use to hold jobs queued.
func (c *serverConfig) withDefaults() {
	if c.workers < 0 {
		c.workers = 0
	}
	if c.slots < 1 {
		c.slots = 64
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 30 * time.Second
	}
	if c.leaseHeartbeat <= 0 {
		c.leaseHeartbeat = store.DefaultHeartbeat(c.leaseTTL)
	}
	if c.deadlineFactor <= 0 {
		c.deadlineFactor = 4
	}
	if c.minDeadline <= 0 {
		c.minDeadline = 15 * time.Second
	}
	if c.breakerAfter < 1 {
		c.breakerAfter = 3
	}
	if c.drainTimeout <= 0 {
		c.drainTimeout = 30 * time.Second
	}
	if c.fsys == nil {
		c.fsys = store.OSFS()
	}
	if c.stderr == nil {
		c.stderr = os.Stderr
	}
}

// singletonJob is the lease name that makes one server the exclusive
// owner of an output directory. Exclusivity is what makes boot-time
// journal compaction safe and the ≤1-OpDone-per-key invariant local
// reasoning instead of a distributed-systems problem.
const singletonJob = "ccserve-singleton"

// errBootCanceled reports a boot interrupted by the shutdown signal:
// nothing was lost — the journal's pending records are the checkpoint —
// and the process should exit 0.
var errBootCanceled = errors.New("ccserve: boot interrupted by shutdown signal; state checkpointed in the journal")

// server is the simulation-as-a-service process state.
type server struct {
	cfg    serverConfig
	fsys   store.FS
	st     *store.Store
	jnl    *store.Journal
	leases *store.Leases
	lease  *store.Lease // the singleton
	pool   *budget.Pool
	reg    *telemetry.Registry
	owner  string
	fleet  *fleetState // nil in in-process mode

	mu       sync.Mutex
	jobs     map[string]*job     // by result key
	batches  map[string][]string // batch id → member keys, submission order
	draining bool

	queue     chan *job
	drainOnce sync.Once
	drainCh   chan struct{} // closed at drain: workers stop picking up work
	runCtx    context.Context
	cancel    context.CancelFunc // cancels in-flight runs past the drain grace
	wg        sync.WaitGroup     // worker loops
	hbStop    chan struct{}      // singleton heartbeat
	hbDone    sync.WaitGroup
}

// newServer opens the output directory, compacts and replays the
// journal, re-admits unfinished work, and starts the worker pool. The
// returned server is ready to have its handler attached to a listener.
func newServer(cfg serverConfig) (*server, error) {
	cfg.withDefaults()
	if err := store.ValidateHeartbeat(cfg.leaseHeartbeat, cfg.leaseTTL); err != nil {
		return nil, err
	}
	fsys := cfg.fsys
	st, err := store.OpenFS(filepath.Join(cfg.out, "store"), fsys)
	if err != nil {
		return nil, err
	}
	owner := fmt.Sprintf("%s-%d", hostname(), os.Getpid())
	leases, err := store.NewLeasesFS(fsys, cfg.out, owner, cfg.leaseTTL)
	if err != nil {
		return nil, err
	}
	// Become the directory's only server. A predecessor that crashed
	// holds a lease that goes stale within one TTL; wait it out rather
	// than failing a restart-after-crash, but refuse a live holder.
	single, err := acquireSingleton(leases, cfg.leaseTTL, cfg.bootCtx)
	if err != nil {
		return nil, err
	}

	s := &server{
		cfg:     cfg,
		fsys:    fsys,
		st:      st,
		leases:  leases,
		lease:   single,
		pool:    budget.NewPool(cfg.queueBudget, cfg.slots, cfg.workers),
		reg:     telemetry.NewRegistry(),
		owner:   owner,
		jobs:    map[string]*job{},
		batches: map[string][]string{},
		drainCh: make(chan struct{}),
		hbStop:  make(chan struct{}),
	}
	s.runCtx, s.cancel = context.WithCancel(context.Background())
	// bootCanceled checks the shutdown signal between boot phases: a
	// SIGTERM during recovery must checkpoint and exit cleanly, not
	// plow on into starting workers (the startup/drain race).
	bootCanceled := func() bool { return cfg.bootCtx != nil && cfg.bootCtx.Err() != nil }
	if bootCanceled() {
		s.releaseSingleton()
		return nil, errBootCanceled
	}

	if cfg.fleet != nil {
		fc := *cfg.fleet
		if err := fc.withDefaults(); err != nil {
			s.releaseSingleton()
			return nil, err
		}
		poisons, err := store.OpenPoisonsFS(fsys, cfg.out)
		if err != nil {
			s.releaseSingleton()
			return nil, err
		}
		s.fleet = &fleetState{cfg: fc, poisons: poisons, workers: map[int]schema.WorkerHealth{}}
	}

	// With exclusive ownership established, bound the WAL: segments
	// whose work is all resolved shrink to their outcome frontier, so a
	// server that has served a million requests replays thousands of
	// records, not millions.
	if dropped, err := store.CompactJournalSet(fsys, cfg.out); err != nil {
		s.releaseSingleton()
		return nil, fmt.Errorf("ccserve: compacting journal: %w", err)
	} else if dropped > 0 {
		fmt.Fprintf(cfg.stderr, "ccserve: journal compaction dropped %d resolved records\n", dropped)
	}

	// Replay the WAL: rebuild every job's last known state, then
	// re-admit whatever was queued or claimed when the last process
	// died. Segments replay in lexicographic — not chronological —
	// order, so replay derives state commutatively from generations,
	// as OpenJournalSet's contract requires.
	jnl, _, err := store.OpenJournalSet(fsys, cfg.out, owner, s.replay)
	if err != nil {
		s.releaseSingleton()
		return nil, err
	}
	s.jnl = jnl
	var recovered []*job
	for _, j := range s.jobs {
		if schema.JobTerminal(j.status.State) {
			continue
		}
		// A recovered job whose config was poisoned (worker deaths in a
		// previous life) must not re-run: resolve it now so the WAL
		// frontier closes instead of re-queueing it every boot. The
		// Force/Release pair keeps the pool ledger balanced — jobPoisoned
		// releases what normal recovery would have forced.
		if s.fleet != nil {
			if rec, ok := s.fleet.poisons.Get(j.key); ok {
				s.pool.Force(j.fp)
				s.jobPoisoned(j, fmt.Sprintf("config poisoned after %d worker crashes: %s", rec.Strikes, rec.Reason))
				continue
			}
		}
		j.status.State = schema.JobQueued
		recovered = append(recovered, j)
	}
	// The queue is created only now, sized to hold every recovered job:
	// no worker is running yet, so a channel smaller than the recovered
	// backlog (a restart with fewer -slots than the dead process had in
	// flight) would deadlock boot while holding the singleton lease.
	qcap := cfg.slots
	if len(recovered) > qcap {
		qcap = len(recovered)
	}
	s.queue = make(chan *job, qcap)
	for _, j := range recovered {
		// Force, not Admit: the previous process already promised to
		// run these. Bouncing them at reboot would turn a crash into
		// silently dropped work.
		s.pool.Force(j.fp)
		s.queue <- j
	}
	if len(recovered) > 0 {
		fmt.Fprintf(cfg.stderr, "ccserve: recovered %d unfinished jobs from the journal\n", len(recovered))
	}

	if cfg.bootHook != nil {
		cfg.bootHook()
	}
	// Last checkpoint before anything starts running: a SIGTERM that
	// landed anywhere during recovery exits here with the re-queued
	// work still journaled — the next boot recovers it identically.
	if bootCanceled() {
		s.releaseSingleton()
		if err := jnl.Close(); err != nil {
			fmt.Fprintf(cfg.stderr, "ccserve: closing journal: %v\n", err)
		}
		return nil, errBootCanceled
	}

	// Heartbeat the singleton for the server's lifetime. The stop
	// channel is captured here: releaseSingleton nils the struct field
	// to stay idempotent, and a select on a nil channel never fires.
	s.hbDone.Add(1)
	go func(stop <-chan struct{}) {
		defer s.hbDone.Done()
		tick := time.NewTicker(cfg.leaseHeartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if s.lease.Heartbeat() != nil || !s.lease.Confirm() {
					// Lost the directory (or the disk): stop taking new
					// work; in-flight jobs commit through the idempotent
					// store, which stays safe under a usurper.
					s.setDraining()
					return
				}
			}
		}
	}(s.hbStop)

	for w := 0; w < cfg.workers; w++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// acquireSingleton claims the server lease, waiting out a stale
// predecessor for up to ttl plus a margin. A shutdown signal during
// the wait aborts boot cleanly instead of finishing the claim.
func acquireSingleton(leases *store.Leases, ttl time.Duration, bootCtx context.Context) (*store.Lease, error) {
	deadline := time.Now().Add(ttl + 2*time.Second)
	var cancel <-chan struct{}
	if bootCtx != nil {
		cancel = bootCtx.Done()
	}
	for {
		l, err := leases.Acquire(singletonJob)
		if err == nil {
			return l, nil
		}
		if !errors.Is(err, store.ErrLeaseHeld) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ccserve: output directory already served: %w", err)
		}
		select {
		case <-cancel:
			return nil, errBootCanceled
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func (s *server) releaseSingleton() {
	close(s.hbStopIfOpen())
	s.hbDone.Wait()
	s.lease.Release()
}

// hbStopIfOpen returns hbStop exactly once for closing; subsequent
// calls return a fresh dead channel so releaseSingleton is idempotent.
func (s *server) hbStopIfOpen() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.hbStop
	if ch == nil {
		ch = make(chan struct{})
	} else {
		s.hbStop = nil
	}
	return ch
}

// replay folds one journal record into the boot state. Pending ops
// (queued/claimed) carry the spec so the job can be rebuilt; terminal
// ops carry the final status. Failed terminals also feed the circuit
// breaker so a crash cannot reset a poisoned config's strike count.
//
// Records apply by generation, not arrival order — OpenJournalSet
// replays segments lexicographically, so an older boot's record can
// arrive after a newer one's. A pending record reopens a job only if
// it starts a generation no terminal has resolved; a terminal record
// never downgrades a newer generation's state.
func (s *server) replay(rec store.JournalRecord) error {
	switch rec.Op {
	case store.OpQueued, store.OpClaimed:
		var d queuedDetail
		if err := json.Unmarshal(rec.Detail, &d); err != nil || d.Spec.Name == "" {
			return nil // old or foreign record shape; ignore
		}
		j, ok := s.jobs[rec.Key]
		if !ok {
			j, err := buildJob(d.Spec)
			if err != nil {
				return nil // journaled by an older build; cannot re-run it
			}
			j.gen = rec.Gen
			s.jobs[j.key] = j
			s.addToBatch(d.Batch, rec.Key)
			return nil
		}
		// A job first seen through a terminal record is a spec-less
		// stub; the pending record carries the full spec, so restore it
		// before the job can ever be re-run.
		if j.setting.Name == "" {
			if nb, err := buildJob(d.Spec); err == nil {
				j.spec, j.setting, j.flows, j.fp = nb.spec, nb.setting, nb.flows, nb.fp
			}
		}
		if rec.Gen > j.gen || (rec.Gen == j.gen && !schema.JobTerminal(j.status.State)) {
			j.gen = rec.Gen
			j.status.State = schema.JobQueued
			j.status.Error = ""
			j.status.Cached = false
		}
		s.addToBatch(d.Batch, rec.Key)
	case store.OpDone, store.OpFailed, store.OpRejected, store.OpCached, store.OpQuarantined, store.OpPoisoned:
		var d terminalDetail
		if err := json.Unmarshal(rec.Detail, &d); err != nil {
			return nil
		}
		j, ok := s.jobs[rec.Key]
		if !ok {
			// Terminal with no surviving pending record (compaction
			// dropped it). The status itself is the state.
			j = &job{key: rec.Key, spec: schema.JobSpec{Name: rec.Job}}
			s.jobs[rec.Key] = j
		}
		if rec.Op == store.OpFailed {
			// Strikes are monotone across generations: a failure that
			// was later retried still happened, and the breaker must
			// not forget it on reboot.
			j.failures++
			j.attempts++
		}
		if !ok || rec.Gen >= j.gen {
			j.gen = rec.Gen
			if d.Status.Key != "" {
				j.status = d.Status
			} else {
				j.status = schema.JobStatus{Name: rec.Job, Key: rec.Key, State: schema.JobDone}
			}
		}
		s.addToBatch(d.Batch, rec.Key)
	}
	return nil
}

func (s *server) addToBatch(batch, key string) {
	if batch == "" {
		return
	}
	for _, k := range s.batches[batch] {
		if k == key {
			return
		}
	}
	s.batches[batch] = append(s.batches[batch], key)
}

// Handler returns the server's HTTP surface, instrumented per route
// into the registry that /metricsz snapshots.
func (s *server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, telemetry.HTTPMetrics(s.reg, pattern, h))
	}
	route("POST /v1/batches", s.handleSubmit)
	route("GET /v1/batches/{id}", s.handleBatch)
	route("GET /v1/jobs/{key}", s.handleJob)
	route("GET /v1/jobs/{key}/events", s.handleEvents)
	route("GET /healthz", s.handleHealth)
	route("GET /metricsz", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, schema.ErrorResponse{SchemaVersion: schema.Version, Error: msg})
}

// handleSubmit admits a batch of scenarios. Admission is all-or-nothing
// against the pool: a full queue bounces the whole batch with 429 and
// an honest Retry-After instead of queueing unboundedly or admitting a
// torso of the batch.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req schema.BatchRequest
	body := http.MaxBytesReader(w, r.Body, 4<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := schema.Check(req.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	built := make([]*job, len(req.Jobs))
	keys := make([]string, len(req.Jobs))
	for i := range req.Jobs {
		if err := req.Jobs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		j, err := buildJob(req.Jobs[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		built[i] = j
		keys[i] = j.key
	}
	batch := batchID(keys)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Two passes: decide every member's disposition, reserving pool
	// capacity as needed; only once the whole batch fits does anything
	// touch the journal or the queue.
	const (
		dispQueue  = iota // new work: journal OpQueued + enqueue
		dispCached        // result already in the store: journal OpCached
		dispDedupe        // existing job (running or terminal): no new work
		dispPoison        // config poisoned: structured refusal, no admission
	)
	disp := make([]int, len(built))
	poisonMsg := make([]string, len(built))
	var admitted []budget.Footprint
	// committed counts admitted members that have been journaled and
	// queued; rollback releases only the rest — a committed job runs and
	// releases its own footprint at completion, so releasing it here too
	// would double-release and let the pool over-admit.
	committed := 0
	rollback := func() {
		for _, fp := range admitted[committed:] {
			s.pool.Release(fp)
		}
	}
	for i, b := range built {
		if ex, ok := s.jobs[b.key]; ok {
			if ex.status.State == schema.JobFailed {
				// A failed job resubmitted is an explicit retry: it
				// re-enters the queue (and the breaker's ledger).
				if err := s.admit(b.fp); err != nil {
					rollback()
					s.reject(w, err)
					return
				}
				admitted = append(admitted, b.fp)
				disp[i] = dispQueue
				continue
			}
			disp[i] = dispDedupe
			continue
		}
		// A poisoned config is refused before any capacity is reserved:
		// its workers died repeatedly, and unlike a quarantine a
		// resubmission does not clear it.
		if s.fleet != nil {
			if rec, ok := s.fleet.poisons.Get(b.key); ok {
				disp[i] = dispPoison
				poisonMsg[i] = fmt.Sprintf("config poisoned after %d worker crashes: %s", rec.Strikes, rec.Reason)
				continue
			}
		}
		if s.st.Has(b.key) {
			disp[i] = dispCached
			continue
		}
		if err := s.admit(b.fp); err != nil {
			rollback()
			s.reject(w, err)
			return
		}
		admitted = append(admitted, b.fp)
		disp[i] = dispQueue
	}

	// Commit: journal first (the promise), then queue (the work).
	for i, b := range built {
		switch disp[i] {
		case dispQueue:
			// A resubmitted failure opens a new generation of the same
			// identity; the journaled Gen is what lets compaction and
			// replay tell this fresh promise from the failure it retries.
			ex := s.jobs[b.key]
			gen := uint64(0)
			if ex != nil {
				gen = ex.gen + 1
			}
			detail, _ := json.Marshal(queuedDetail{Spec: b.spec, Batch: batch})
			if err := s.jnl.Append(store.JournalRecord{
				Op: store.OpQueued, Job: b.spec.Name, Key: b.key,
				Owner: s.owner, Gen: gen, Detail: detail,
			}); err != nil {
				// The journal is sticky-failed: nothing further can be
				// promised durably. Refuse the batch; already-journaled
				// members will be recovered as queued at next boot.
				rollback()
				writeError(w, http.StatusInternalServerError, "journal: "+err.Error())
				return
			}
			committed++
			if ex != nil {
				// Replay may have rebuilt ex as a spec-less stub from a
				// terminal-only journal frontier; and its footprint must
				// match the one just admitted so the Release at completion
				// balances. Refresh it all from the freshly built job.
				ex.spec, ex.setting, ex.flows, ex.fp = b.spec, b.setting, b.flows, b.fp
				ex.gen = gen
				ex.attempts = 0 // fresh cycle for a resubmitted failure
				s.transition(ex, schema.JobQueued, "")
				s.queue <- ex
			} else {
				s.jobs[b.key] = b
				s.queue <- b
			}
		case dispCached:
			b.status.State = schema.JobDone
			b.status.Cached = true
			s.jobs[b.key] = b
			st := b.status
			detail, _ := json.Marshal(terminalDetail{Status: st, Batch: batch})
			if err := s.jnl.Append(store.JournalRecord{
				Op: store.OpCached, Job: b.spec.Name, Key: b.key,
				Owner: s.owner, Detail: detail,
			}); err != nil {
				fmt.Fprintf(s.cfg.stderr, "ccserve: journal: %v\n", err)
			}
		case dispPoison:
			b.status.State = schema.JobPoisoned
			b.status.Error = poisonMsg[i]
			s.jobs[b.key] = b
			detail, _ := json.Marshal(terminalDetail{Status: b.status, Batch: batch})
			if err := s.jnl.Append(store.JournalRecord{
				Op: store.OpPoisoned, Job: b.spec.Name, Key: b.key,
				Owner: s.owner, Detail: detail,
			}); err != nil {
				fmt.Fprintf(s.cfg.stderr, "ccserve: journal: %v\n", err)
			}
		}
		s.addToBatch(batch, b.key)
	}
	writeJSON(w, http.StatusCreated, s.batchResponseLocked(batch))
}

// admit runs pool admission; the caller holds s.mu.
func (s *server) admit(fp budget.Footprint) error {
	return s.pool.Admit(fp)
}

// reject writes the 429 for a pool rejection (or a 500 for anything
// else); the caller holds s.mu.
func (s *server) reject(w http.ResponseWriter, err error) {
	var qe *budget.QueueError
	if !errors.As(err, &qe) {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	retry := int(qe.RetryAfter.Round(time.Second).Seconds())
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(schema.ErrorResponse{ //nolint:errcheck
		SchemaVersion: schema.Version,
		Error:         qe.Error(),
		RetryAfterS:   float64(retry),
	})
}

// batchResponseLocked renders a batch's members; the caller holds s.mu.
func (s *server) batchResponseLocked(batch string) schema.BatchResponse {
	resp := schema.BatchResponse{SchemaVersion: schema.Version, Batch: batch}
	for _, k := range s.batches[batch] {
		if j, ok := s.jobs[k]; ok {
			resp.Jobs = append(resp.Jobs, j.status)
		}
	}
	return resp
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.batches[id]; !ok {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, s.batchResponseLocked(id))
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as JSONL: one line per status
// transition (plus selected run telemetry), until the job is terminal
// or the client goes away. Subscriber channels are bounded; a slow
// client drops intermediate telemetry, never blocks the worker.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	first := eventLine("status", j.status)
	var ch chan []byte
	terminal := schema.JobTerminal(j.status.State)
	if !terminal {
		ch = make(chan []byte, 64)
		j.subs = append(j.subs, ch)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(first) //nolint:errcheck
	flush(w)
	if terminal {
		return
	}
	defer s.unsubscribe(key, ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			return
		case line, open := <-ch:
			if !open {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			flush(w)
		}
	}
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func eventLine(typ string, v any) []byte {
	line, err := json.Marshal(struct {
		Type string `json:"type"`
		Data any    `json:"data"`
	}{typ, v})
	if err != nil {
		return nil
	}
	return append(line, '\n')
}

func (s *server) unsubscribe(key string, ch chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return
	}
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// publish sends one event line to a job's subscribers, dropping for
// slow ones; the caller holds s.mu.
func (s *server) publish(j *job, line []byte) {
	if line == nil {
		return
	}
	for _, ch := range j.subs {
		select {
		case ch <- line:
		default: // slow subscriber: drop rather than block the worker
		}
	}
}

// transition moves a job to a new state and notifies subscribers,
// closing their streams on terminal states; the caller holds s.mu.
func (s *server) transition(j *job, state, errMsg string) {
	j.status.State = state
	j.status.Error = errMsg
	j.status.Attempts = j.attempts
	s.publish(j, eventLine("status", j.status))
	if schema.JobTerminal(state) {
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// handleHealth answers both probe questions. Readiness (the default)
// mirrors the server state in the HTTP code: 200 ready, 503 draining.
// Liveness (?probe=live) answers 200 whenever the process responds at
// all — a draining server is alive and mid-checkpoint; restarting it
// because a readiness-shaped probe said 503 would be the supervisor
// loop sabotaging the drain protocol.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := schema.HealthResponse{SchemaVersion: schema.Version, State: schema.ServerReady, Live: true}
	if s.draining {
		resp.State = schema.ServerDraining
	}
	resp.Ready = resp.State == schema.ServerReady
	for _, j := range s.jobs {
		switch j.status.State {
		case schema.JobQueued:
			resp.Queued++
		case schema.JobRunning:
			resp.Running++
		}
	}
	s.mu.Unlock()
	if s.fleet != nil {
		resp.Workers = s.fleet.list()
		resp.Fleet = s.fleetCounters()
	}
	code := http.StatusOK
	if !resp.Ready && r.URL.Query().Get("probe") != "live" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// workerLoop claims queued jobs until drain.
func (s *server) workerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCh:
			return
		case j := <-s.queue:
			select {
			case <-s.drainCh:
				// Drained between dequeue and start: the job keeps its
				// journaled OpQueued and runs at next boot.
				return
			default:
			}
			s.execute(j)
		}
	}
}

// execute dispatches a claimed job to whichever execution engine this
// server was built with: the process-isolated fleet when one is
// configured, the in-process path otherwise (-inprocess, and the
// workers' own recursion guard).
func (s *server) execute(j *job) {
	if s.fleet != nil {
		s.runJobFleet(j)
		return
	}
	s.runJob(j)
}

// runJob executes one job end to end: lease, claim record, deadline,
// run, commit. Its panic net mirrors cmd/reproduce's — the supervisor
// catches simulation panics, this catches everything around them.
func (s *server) runJob(j *job) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(s.cfg.stderr, "ccserve: job %s: panic outside supervisor: %v\n%s", j.spec.Name, r, debug.Stack())
			s.mu.Lock()
			s.jobFailed(j, fmt.Sprintf("panic outside supervisor: %v", r))
			s.mu.Unlock()
		}
	}()

	lease, err := s.acquireJobLease(j)
	if err != nil {
		s.mu.Lock()
		s.jobFailed(j, "lease: "+err.Error())
		s.mu.Unlock()
		return
	}
	defer lease.Release()

	// Serve from the store before computing: after a crash between
	// store commit and journal commit, the recomputation would be
	// wasted work and a duplicate OpDone. This check is what keeps
	// "at most one OpDone per key" an invariant instead of a hope.
	if s.st.Has(j.key) {
		s.mu.Lock()
		j.status.Cached = true
		detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, schema.JobDone, "")})
		s.journalTerminal(store.OpCached, j, detail)
		s.pool.Release(j.fp)
		s.transition(j, schema.JobDone, "")
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	j.attempts++
	detail, _ := json.Marshal(queuedDetail{Spec: j.spec})
	if err := s.jnl.Append(store.JournalRecord{
		Op: store.OpClaimed, Job: j.spec.Name, Key: j.key,
		Owner: s.owner, Gen: j.gen, Detail: detail,
	}); err != nil {
		s.jobFailed(j, "journal: "+err.Error())
		s.mu.Unlock()
		return
	}
	s.transition(j, schema.JobRunning, "")
	s.mu.Unlock()

	// Deadline from the estimator; lease heartbeat cancels on loss.
	jobCtx, cancelJob := context.WithTimeout(s.runCtx, j.deadline(s.cfg.deadlineFactor, s.cfg.minDeadline))
	defer cancelJob()
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		tick := time.NewTicker(s.cfg.leaseHeartbeat)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				if lease.Heartbeat() != nil || !lease.Confirm() {
					cancelJob()
					return
				}
			}
		}
	}()

	cfg := j.config()
	cfg.Collector = telemetry.Multi(s.reg.Instrument(), s.subscriberCollector(j))
	start := time.Now()
	results, err := core.RunManyCtx(jobCtx, []core.RunConfig{cfg}, core.SweepOptions{
		Parallelism: 1,
		Retries:     s.cfg.retries,
	})
	close(hbStop)
	hbDone.Wait()
	wall := time.Since(start)

	if err == nil {
		var buf bytes.Buffer
		tab := renderResult(j.spec, results[0])
		if werr := tab.WriteJSON(&buf); werr != nil {
			err = werr
		} else if perr := s.st.Put(j.key, buf.Bytes()); perr != nil {
			err = perr
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		j.failures = 0
		j.status.WallMs = float64(wall.Milliseconds())
		detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, schema.JobDone, "")})
		s.journalTerminal(store.OpDone, j, detail)
		s.pool.Release(j.fp)
		s.transition(j, schema.JobDone, "")
		return
	}
	// A drain (or server-wide cancel) interrupting the run is a
	// checkpoint, not a failure: the journaled OpQueued/OpClaimed
	// stands, no terminal is written, and the next boot re-runs the
	// job. The store stayed untouched, so the re-run commits the same
	// bytes the uninterrupted run would have.
	if s.runCtx.Err() != nil && isCancellation(err) {
		j.status.State = schema.JobQueued
		return
	}
	s.jobFailed(j, err.Error())
	var re *core.RunError
	if errors.As(err, &re) && j.status.State == schema.JobQuarantined {
		// Park a replayable record beside the store so the quarantine
		// can be debugged offline (`ccatscale replay -in`).
		path := filepath.Join(s.cfg.out, j.key+".failed.json")
		var buf bytes.Buffer
		if werr := re.WriteJSON(&buf); werr == nil {
			if werr := store.WriteFileAtomicFS(s.fsys, path, buf.Bytes()); werr != nil {
				fmt.Fprintf(s.cfg.stderr, "ccserve: writing %s: %v\n", path, werr)
			}
		}
	}
}

// statusFor previews a job's status in a target state without mutating
// it; used to serialize the terminal detail before transition runs.
func statusFor(j *job, state, errMsg string) schema.JobStatus {
	st := j.status
	st.State = state
	st.Error = errMsg
	st.Attempts = j.attempts
	return st
}

// isCancellation reports whether err is context-cancellation fallout
// (directly, or a RunError whose reason records the cancel).
func isCancellation(err error) bool {
	if errors.Is(err, context.Canceled) {
		return true
	}
	var re *core.RunError
	return errors.As(err, &re) && (len(re.Reason) >= 12 && re.Reason[:12] == "run canceled")
}

// jobFailed records a failure, trips the breaker past the threshold,
// journals the terminal op, and releases pool capacity; the caller
// holds s.mu.
func (s *server) jobFailed(j *job, msg string) {
	j.failures++
	op, state := store.OpFailed, schema.JobFailed
	if j.failures >= s.cfg.breakerAfter {
		op, state = store.OpQuarantined, schema.JobQuarantined
		msg = fmt.Sprintf("quarantined after %d failures: %s", j.failures, msg)
	}
	detail, _ := json.Marshal(terminalDetail{Status: statusFor(j, state, msg)})
	s.journalTerminal(op, j, detail)
	s.pool.Release(j.fp)
	s.transition(j, state, msg)
}

// journalTerminal appends a terminal record, logging (not failing) on
// error: the in-memory state and the idempotent store still advance,
// and the next boot re-derives whatever the journal missed. The caller
// holds s.mu.
func (s *server) journalTerminal(op string, j *job, detail []byte) {
	if err := s.jnl.Append(store.JournalRecord{
		Op: op, Job: j.spec.Name, Key: j.key, Owner: s.owner, Gen: j.gen, Detail: detail,
	}); err != nil {
		fmt.Fprintf(s.cfg.stderr, "ccserve: journal %s %s: %v\n", op, j.key, err)
	}
}

// acquireJobLease claims a job's lease, waiting out a stale holder (a
// crashed predecessor's claim) but giving up at drain.
func (s *server) acquireJobLease(j *job) (*store.Lease, error) {
	for {
		lease, err := s.leases.Acquire(j.spec.Name)
		if err == nil {
			return lease, nil
		}
		if !errors.Is(err, store.ErrLeaseHeld) {
			return nil, err
		}
		select {
		case <-s.drainCh:
			return nil, err
		case <-time.After(s.cfg.leaseHeartbeat):
		}
	}
}

// subscriberCollector forwards a thin slice of run telemetry to the
// job's event-stream subscribers: lifecycle and degradation, not the
// per-packet firehose.
func (s *server) subscriberCollector(j *job) telemetry.Collector {
	return telemetry.CollectorFunc(func(ev telemetry.Event) {
		switch ev.Kind {
		case telemetry.KindRunStart, telemetry.KindRunEnd, telemetry.KindDegraded,
			telemetry.KindLinkDown, telemetry.KindLinkUp:
		default:
			return
		}
		line := eventLine("telemetry", map[string]any{
			"kind":  ev.Kind.String(),
			"label": ev.Label,
			"a":     ev.A,
			"b":     ev.B,
		})
		s.mu.Lock()
		s.publish(j, line)
		s.mu.Unlock()
	})
}

// setDraining flips the server to draining (healthz 503, submits 503).
func (s *server) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain performs the graceful-shutdown protocol: stop admitting, let
// workers finish within the grace period, then cancel what remains —
// cancelled jobs keep their journaled pending records and re-run at
// next boot. Idempotent; calls after the first return immediately.
func (s *server) Drain() {
	s.drainOnce.Do(s.drain)
}

func (s *server) drain() {
	s.setDraining()
	close(s.drainCh)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.drainTimeout):
		s.cancel()
		<-done
	}
	s.cancel()
	s.releaseSingleton()
	if err := s.jnl.Close(); err != nil {
		fmt.Fprintf(s.cfg.stderr, "ccserve: closing journal: %v\n", err)
	}
}

// hostname names this machine for lease ownership and journal segment
// names, degrading to a constant when the kernel will not say.
func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "host"
	}
	return h
}
