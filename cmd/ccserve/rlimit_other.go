//go:build !linux && !darwin

package main

// setWorkerMemLimit is a no-op where RLIMIT_AS is unavailable; the
// fleet still isolates faults per process, just without the hard
// address-space ceiling.
func setWorkerMemLimit(n int64) error { return nil }
