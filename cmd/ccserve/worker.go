package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"ccatscale/internal/core"
	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// workerRun is the hidden -worker entrypoint: one execution attempt in
// its own process. The supervisor re-execs this binary, writes a
// schema.WorkerJob to its stdin, and reads back a single-line
// schema.WorkerOutcome on stdout; a worker that dies without one
// crashed, and the supervisor's crash-loop machinery takes over.
//
// The worker speaks the same store + lease + journal-adjacent protocol
// any process would: it claims its hedge-slot lease, heartbeats it,
// serves from the store when the result already exists, and commits
// through the store's idempotent Put — so a SIGKILL at any instant
// leaves nothing a reboot (or a hedge twin) cannot reconcile. The only
// thing it does NOT touch is the journal: journaling is the
// supervisor's job, keeping the single-writer-per-segment discipline
// intact.
//
// Exit codes: 0 = an outcome line was written (whatever it says);
// 3 = the payload itself was unreadable (a supervisor bug, not a job
// property). Anything else — including the Go runtime's exit 2 on an
// OOM abort under the RLIMIT_AS ceiling — is a crash.
func workerRun(fsys store.FS, stdin io.Reader, stdout, stderr io.Writer) int {
	var wj schema.WorkerJob
	if err := json.NewDecoder(stdin).Decode(&wj); err != nil {
		fmt.Fprintf(stderr, "ccserve worker: decoding payload: %v\n", err)
		return 3
	}
	if err := schema.Check(wj.SchemaVersion); err != nil {
		fmt.Fprintf(stderr, "ccserve worker: %v\n", err)
		return 3
	}
	if wj.Out == "" || wj.Owner == "" {
		fmt.Fprintln(stderr, "ccserve worker: payload missing out/owner")
		return 3
	}
	outcome := func(state string, mut func(*schema.WorkerOutcome)) int {
		o := schema.WorkerOutcome{SchemaVersion: schema.Version, State: state}
		if mut != nil {
			mut(&o)
		}
		line, err := json.Marshal(o)
		if err != nil {
			fmt.Fprintf(stderr, "ccserve worker: encoding outcome: %v\n", err)
			return 4
		}
		fmt.Fprintf(stdout, "%s\n", line)
		return 0
	}
	failed := func(msg string) int {
		return outcome(schema.WorkerFailed, func(o *schema.WorkerOutcome) { o.Error = msg })
	}

	if err := wj.Spec.Validate(); err != nil {
		return failed("spec: " + err.Error())
	}
	// The memory ceiling goes on before the first big allocation: from
	// here, a config whose appetite outgrows its estimate dies *here*,
	// alone, as a runtime OOM abort the supervisor reads as a strike.
	if wj.MemLimitBytes > 0 {
		if err := setWorkerMemLimit(wj.MemLimitBytes); err != nil {
			fmt.Fprintf(stderr, "ccserve worker: rlimit: %v\n", err)
		}
	}
	j, err := buildJob(wj.Spec)
	if err != nil {
		return failed("spec: " + err.Error())
	}
	if wj.Key != "" && j.key != wj.Key {
		// Supervisor and worker disagree on the job's identity (version
		// skew across a re-exec?): running would commit under the wrong
		// address. Refuse as a failure, not a crash — respawning cannot
		// fix a disagreement.
		return failed(fmt.Sprintf("key mismatch: supervisor says %s, spec hashes to %s", wj.Key, j.key))
	}

	ttl := msToDuration(wj.LeaseTTLMs, 30*time.Second)
	hb := msToDuration(wj.HeartbeatMs, store.DefaultHeartbeat(ttl))
	deadline := msToDuration(wj.DeadlineMs, 15*time.Second)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	leases, err := store.NewLeasesFS(fsys, wj.Out, wj.Owner, ttl)
	if err != nil {
		return failed("leases: " + err.Error())
	}
	// Claim this attempt's hedge slot, waiting out a stale predecessor
	// (the supervisor usually cleans those up first, but a whole-fleet
	// crash can leave young leases only the TTL clears).
	slot := store.SlotName(wj.Spec.Name, wj.Slot)
	waitUntil := time.Now().Add(deadline)
	var lease *store.Lease
	for {
		lease, err = leases.Acquire(slot)
		if err == nil {
			break
		}
		if !errors.Is(err, store.ErrLeaseHeld) {
			return failed("lease: " + err.Error())
		}
		if time.Now().After(waitUntil) {
			return failed("lease: " + err.Error())
		}
		select {
		case <-sigCtx.Done():
			return outcome(schema.WorkerCheckpoint, nil)
		case <-time.After(hb):
		}
	}
	defer lease.Release()

	st, err := store.OpenFS(filepath.Join(wj.Out, "store"), fsys)
	if err != nil {
		return failed("store: " + err.Error())
	}
	// Serve from the store before computing: a crashed predecessor (or
	// the hedge twin) may already have committed this key.
	if st.Has(j.key) {
		return outcome(schema.WorkerDone, func(o *schema.WorkerOutcome) { o.Cached = true })
	}

	runCtx, cancelRun := context.WithTimeout(sigCtx, deadline)
	defer cancelRun()
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				if lease.Heartbeat() != nil || !lease.Confirm() {
					cancelRun()
					return
				}
			}
		}
	}()

	cfg := j.config()
	start := time.Now()
	results, err := core.RunManyCtx(runCtx, []core.RunConfig{cfg}, core.SweepOptions{
		Parallelism: 1,
		Retries:     wj.Retries,
	})
	close(hbStop)
	hbDone.Wait()
	wall := time.Since(start)

	if err == nil {
		var buf bytes.Buffer
		tab := renderResult(wj.Spec, results[0])
		if werr := tab.WriteJSON(&buf); werr != nil {
			err = werr
		} else if perr := st.Put(j.key, buf.Bytes()); perr != nil {
			err = perr
		}
	}
	if err == nil {
		return outcome(schema.WorkerDone, func(o *schema.WorkerOutcome) {
			o.WallMs = float64(wall.Milliseconds())
		})
	}
	if sigCtx.Err() != nil && isCancellation(err) {
		// SIGTERM mid-run: the store stayed untouched, the supervisor's
		// pending journal records stand, the job re-runs verbatim.
		return outcome(schema.WorkerCheckpoint, nil)
	}
	// Park a replayable failure record beside the store so a quarantine
	// decided by the supervisor can be debugged offline.
	var re *core.RunError
	if errors.As(err, &re) {
		var buf bytes.Buffer
		if werr := re.WriteJSON(&buf); werr == nil {
			path := filepath.Join(wj.Out, j.key+".failed.json")
			if werr := store.WriteFileAtomicFS(fsys, path, buf.Bytes()); werr != nil {
				fmt.Fprintf(stderr, "ccserve worker: writing %s: %v\n", path, werr)
			}
		}
	}
	return failed(err.Error())
}

// msToDuration converts a schema millisecond field, falling back when
// the supervisor sent zero.
func msToDuration(ms float64, fallback time.Duration) time.Duration {
	if ms <= 0 {
		return fallback
	}
	return time.Duration(ms * float64(time.Millisecond))
}
