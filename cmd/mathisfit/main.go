// Command mathisfit derives the Mathis constant C from measurement
// data, following the empirical methodology of Mathis et al. (1997)
// that the paper applies in §4: least-squares fit of
// Throughput = MSS·C/(RTT·√p) over per-flow samples.
//
// Input is CSV on stdin or in the files given as arguments, one sample
// per line:
//
//	throughput_bytes_per_sec,p,rtt_seconds[,mss_bytes]
//
// Lines starting with '#' and a header line containing "throughput"
// are ignored. MSS defaults to 1448. Output: the fitted C, the median
// and 90th-percentile relative prediction errors, and the sample count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ccatscale/internal/mathis"
	"ccatscale/internal/metrics"
)

func main() {
	mss := flag.Float64("mss", 1448, "default MSS in bytes for 3-column input")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mathisfit [-mss N] [file.csv ...] (default: stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var samples []mathis.Sample
	if flag.NArg() == 0 {
		s, err := parse(os.Stdin, *mss)
		if err != nil {
			fatal(err)
		}
		samples = s
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		s, err := parse(f, *mss)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		samples = append(samples, s...)
	}

	fit, err := mathis.FitAndEvaluate(samples)
	if err != nil {
		fatal(err)
	}
	errs := mathis.PredictionErrors(fit.C, samples)
	fmt.Printf("samples: %d\n", fit.Samples)
	fmt.Printf("C:       %.4f\n", fit.C)
	fmt.Printf("median prediction error: %.1f%%\n", fit.MedianErr*100)
	fmt.Printf("p90 prediction error:    %.1f%%\n", metrics.Quantile(errs, 0.9)*100)
}

func parse(r io.Reader, defaultMSS float64) ([]mathis.Sample, error) {
	var out []mathis.Sample
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.Contains(strings.ToLower(text), "throughput") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("line %d: want ≥3 comma-separated fields, got %q", line, text)
		}
		var vals [4]float64
		vals[3] = defaultMSS
		for i := 0; i < len(fields) && i < 4; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d field %d: %v", line, i+1, err)
			}
			vals[i] = v
		}
		out = append(out, mathis.Sample{
			ThroughputBps: vals[0],
			P:             vals[1],
			RTTSeconds:    vals[2],
			MSSBytes:      vals[3],
		})
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mathisfit:", err)
	os.Exit(1)
}
