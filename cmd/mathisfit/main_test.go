package main

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	in := `# comment
throughput,p,rtt
724000,0.01,0.02
362000,0.04,0.02,1000

1000,0.001,0.1
`
	samples, err := parse(strings.NewReader(in), 1448)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	if samples[0].MSSBytes != 1448 {
		t.Fatalf("default MSS not applied: %v", samples[0].MSSBytes)
	}
	if samples[1].MSSBytes != 1000 {
		t.Fatalf("explicit MSS ignored: %v", samples[1].MSSBytes)
	}
	if samples[2].RTTSeconds != 0.1 {
		t.Fatalf("rtt = %v", samples[2].RTTSeconds)
	}
}

func TestParseErrors(t *testing.T) {
	for name, in := range map[string]string{
		"too few fields": "1,2\n",
		"non-numeric":    "a,b,c\n",
	} {
		if _, err := parse(strings.NewReader(in), 1448); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
