// Command fprint emits a deterministic fingerprint of simulation
// behavior across CCAs, seeds, and impairment configurations. It exists
// to verify bit-identity of hot-path optimizations: run it before and
// after a change and diff the output.
//
// Two auxiliary modes ride along:
//
//	fprint -telemetry      attach a full telemetry pipeline (collector,
//	                       registry, JSONL serialization to /dev/null) to
//	                       every run; stdout must stay byte-identical to
//	                       a plain run — the observability-never-perturbs
//	                       guarantee, checked in CI by diffing the two.
//	fprint -check FILE     validate a result artifact (JSON table or
//	                       telemetry JSONL stream) against this build's
//	                       result schema, rejecting unknown major
//	                       versions with a clear error.
//	fprint -store DIR      fingerprint a sweep's content-addressed
//	                       result store: one sha256 over every record's
//	                       key and CRC-verified payload, in key order.
//	                       Two stores fingerprint equal iff they hold
//	                       byte-identical results — the check the
//	                       crash-injection CI smoke uses to prove a
//	                       killed-and-resumed sweep equals an
//	                       uninterrupted one.
//	fprint -viascenario    rebuild every base-matrix config through a
//	                       scenario document (encode → parse → compile)
//	                       before running it; the output must be a
//	                       byte-identical prefix of a plain run — the
//	                       declarative API introduces no drift.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"

	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/store"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

func main() {
	withTelemetry := flag.Bool("telemetry", false, "attach a telemetry collector to every run (output must not change)")
	checkFile := flag.String("check", "", "validate a JSON table or telemetry JSONL file against the result schema and exit")
	storeDir := flag.String("store", "", "fingerprint the content-addressed result store in this directory and exit")
	viaScenario := flag.Bool("viascenario", false, "build the base matrix through scenario documents (output must equal a plain run's base matrix)")
	flag.Parse()

	if *checkFile != "" {
		if err := checkArtifact(*checkFile); err != nil {
			fmt.Fprintf(os.Stderr, "fprint: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storeDir != "" {
		if err := fingerprintStore(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "fprint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var coll telemetry.Collector
	var stream *telemetry.Stream
	reg := telemetry.NewRegistry()
	if *withTelemetry {
		var err error
		stream, err = telemetry.NewStream(io.Discard, "fprint")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fprint: %v\n", err)
			os.Exit(1)
		}
		coll = telemetry.Multi(stream.Collector("fprint"), reg.Instrument())
	}
	fingerprint(coll, *viaScenario)
	if *withTelemetry {
		if err := stream.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "fprint: telemetry stream: %v\n", err)
			os.Exit(1)
		}
		// Stderr only: the stdout fingerprint must stay byte-identical.
		snap := reg.Snapshot()
		fmt.Fprintf(os.Stderr, "telemetry: %d events across %d runs\n",
			totalEvents(snap), snap.Counters["runs_ended"])
	}
}

// checkArtifact validates a result artifact's schema version. The file
// kind is sniffed: telemetry JSONL streams start with a header record
// carrying "k":"header"; anything else is treated as a JSON table.
func checkArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bytes.Contains(firstLine(data), []byte(`"k":"header"`)) {
		n := 0
		if err := telemetry.ParseStream(bytes.NewReader(data), func(telemetry.StreamRecord) error {
			n++
			return nil
		}); err != nil {
			return err
		}
		fmt.Printf("%s: telemetry stream ok (%d records)\n", path, n)
		return nil
	}
	t, err := report.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return err
	}
	fmt.Printf("%s: table ok (%d columns, %d rows)\n", path, len(t.Headers), len(t.Rows))
	return nil
}

// fingerprintStore prints one line per store record (key and payload
// digest) and a final combined fingerprint over all of them in key
// order. Get verifies each record's CRC frame, so a torn or bit-rotted
// record fails the fingerprint loudly instead of hashing garbage.
func fingerprintStore(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	keys, err := st.Keys()
	if err != nil {
		return err
	}
	all := sha256.New()
	for _, key := range keys {
		payload, err := st.Get(key)
		if err != nil {
			return fmt.Errorf("record %s: %w", key, err)
		}
		sum := sha256.Sum256(payload)
		fmt.Printf("%s: sha256=%x bytes=%d\n", key, sum, len(payload))
		fmt.Fprintf(all, "%s %x\n", key, sum)
	}
	fmt.Printf("store: records=%d fingerprint=%x\n", len(keys), all.Sum(nil))
	return nil
}

func firstLine(data []byte) []byte {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return data[:i]
	}
	return data
}

// scenarioEquivalent re-expresses one base-matrix config as a scenario
// document and compiles it back through the full declarative path —
// Encode, ParseScenario, NewScenarioBuilder, RunConfig — returning the
// config that path would run. Any drift between this and the direct
// construction shows up as a fingerprint diff.
func scenarioEquivalent(cfg core.RunConfig, cca string, seed uint64, coll telemetry.Collector) (core.RunConfig, error) {
	doc := schema.Scenario{
		JobSpec: schema.JobSpec{
			Name:        "fprint",
			Seed:        seed,
			RateMbps:    float64(cfg.Rate) / float64(units.MbitPerSec),
			BufferBytes: int64(cfg.Buffer),
			Flows:       []schema.FlowGroup{{CCA: cca, RTTMs: 20, Count: 4}},
			WarmupS:     float64(cfg.Warmup) / float64(sim.Second),
			DurationS:   float64(cfg.Duration) / float64(sim.Second),
			StaggerS:    float64(cfg.Stagger) / float64(sim.Second),
		},
		SeriesIntervalS: float64(cfg.SeriesInterval) / float64(sim.Second),
	}
	data, err := doc.Encode()
	if err != nil {
		return core.RunConfig{}, err
	}
	parsed, err := schema.ParseScenario(data)
	if err != nil {
		return core.RunConfig{}, err
	}
	b, err := core.NewScenarioBuilder(parsed)
	if err != nil {
		return core.RunConfig{}, err
	}
	return b.RunConfig(core.WithRunCollector(coll)), nil
}

func totalEvents(snap telemetry.Snapshot) int64 {
	var total int64
	for name, v := range snap.Counters {
		if len(name) > len("telemetry_events_total/") && name[:len("telemetry_events_total/")] == "telemetry_events_total/" {
			total += v
		}
	}
	return total
}

// fingerprint runs the fixed experiment matrix and prints the
// deterministic result lines. coll, when non-nil, is attached to every
// run; it must not change a single printed byte. viaScenario rebuilds
// each base-matrix config from a scenario document — encode, parse,
// compile — instead of constructing the RunConfig directly; the base
// matrix must print byte-identically either way, and the impairment
// variants (not expressible as scenarios) are skipped.
func fingerprint(coll telemetry.Collector, viaScenario bool) {
	ccas := []string{"reno", "cubic", "cubic-nohystart", "bbr", "bbr2"}
	for _, cca := range ccas {
		for _, seed := range []uint64{1, 7, 42} {
			cfg := core.RunConfig{
				Rate:           50 * units.MbitPerSec,
				Buffer:         units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
				Flows:          core.UniformFlows(4, cca, 20*sim.Millisecond),
				Warmup:         2 * sim.Second,
				Duration:       8 * sim.Second,
				Stagger:        sim.Second,
				Seed:           seed,
				SeriesInterval: 500 * sim.Millisecond,
				Collector:      coll,
			}
			if viaScenario {
				var err error
				cfg, err = scenarioEquivalent(cfg, cca, seed, coll)
				if err != nil {
					fmt.Printf("%s/%d: ERR %v\n", cca, seed, err)
					continue
				}
			}
			res, err := core.Run(cfg)
			if err != nil {
				fmt.Printf("%s/%d: ERR %v\n", cca, seed, err)
				continue
			}
			fmt.Printf("%s/%d: events=%d drops=%d agg=%d util=%.12f burst=%.12f\n",
				cca, seed, res.Events, res.TotalDrops, int64(res.AggregateGoodput), res.Utilization, res.DropBurstiness)
			for i, f := range res.Flows {
				fmt.Printf("  f%d sent=%d rtx=%d fr=%d rto=%d good=%d meanRTT=%d drops=%d\n",
					i, f.SegmentsSent, f.Retransmissions, f.FastRecoveries, f.RTOs, int64(f.Goodput), int64(f.MeanRTT), f.Drops)
			}
			for _, pt := range res.Series {
				fmt.Printf("  s %d %v\n", int64(pt.At), pt.Rates)
			}
		}
	}
	if viaScenario {
		return
	}
	// Impairment paths: jitter, burst loss, outage, codel, audit strict.
	variants := []struct {
		name string
		mut  func(*core.RunConfig)
	}{
		{"jitter", func(c *core.RunConfig) { c.Jitter = 2 * sim.Millisecond; c.RandomLoss = 0.001 }},
		{"burst", func(c *core.RunConfig) { c.BurstLoss = &core.BurstLossSpec{MeanLoss: 0.005, MeanBurstLen: 4} }},
		{"outage", func(c *core.RunConfig) {
			c.Outage = &core.OutageSpec{Start: 3 * sim.Second, Down: 300 * sim.Millisecond, Period: 2 * sim.Second, Count: 2}
		}},
		{"codel", func(c *core.RunConfig) { c.AQM = "codel" }},
		{"strict", func(c *core.RunConfig) { c.Audit = "strict" }},
	}
	for _, v := range variants {
		cfg := core.RunConfig{
			Rate:      50 * units.MbitPerSec,
			Buffer:    units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
			Flows:     core.MixedFlows(4, "cubic", "bbr", 20*sim.Millisecond),
			Warmup:    2 * sim.Second,
			Duration:  8 * sim.Second,
			Stagger:   sim.Second,
			Seed:      42,
			Collector: coll,
		}
		v.mut(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			fmt.Printf("%s: ERR %v\n", v.name, err)
			continue
		}
		fmt.Printf("%s: events=%d drops=%d rnd=%d burst=%d out=%d agg=%d util=%.12f\n",
			v.name, res.Events, res.TotalDrops, res.RandomDrops, res.BurstDrops, res.OutageDrops,
			int64(res.AggregateGoodput), res.Utilization)
		for i, f := range res.Flows {
			fmt.Printf("  f%d sent=%d rtx=%d fr=%d rto=%d good=%d meanRTT=%d drops=%d\n",
				i, f.SegmentsSent, f.Retransmissions, f.FastRecoveries, f.RTOs, int64(f.Goodput), int64(f.MeanRTT), f.Drops)
		}
	}
}
