// Command fprint emits a deterministic fingerprint of simulation
// behavior across CCAs, seeds, and impairment configurations. It exists
// to verify bit-identity of hot-path optimizations: run it before and
// after a change and diff the output.
package main

import (
	"fmt"

	"ccatscale/internal/core"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func main() {
	ccas := []string{"reno", "cubic", "cubic-nohystart", "bbr", "bbr2"}
	for _, cca := range ccas {
		for _, seed := range []uint64{1, 7, 42} {
			cfg := core.RunConfig{
				Rate:           50 * units.MbitPerSec,
				Buffer:         units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
				Flows:          core.UniformFlows(4, cca, 20*sim.Millisecond),
				Warmup:         2 * sim.Second,
				Duration:       8 * sim.Second,
				Stagger:        sim.Second,
				Seed:           seed,
				SeriesInterval: 500 * sim.Millisecond,
			}
			res, err := core.Run(cfg)
			if err != nil {
				fmt.Printf("%s/%d: ERR %v\n", cca, seed, err)
				continue
			}
			fmt.Printf("%s/%d: events=%d drops=%d agg=%d util=%.12f burst=%.12f\n",
				cca, seed, res.Events, res.TotalDrops, int64(res.AggregateGoodput), res.Utilization, res.DropBurstiness)
			for i, f := range res.Flows {
				fmt.Printf("  f%d sent=%d rtx=%d fr=%d rto=%d good=%d meanRTT=%d drops=%d\n",
					i, f.SegmentsSent, f.Retransmissions, f.FastRecoveries, f.RTOs, int64(f.Goodput), int64(f.MeanRTT), f.Drops)
			}
			for _, pt := range res.Series {
				fmt.Printf("  s %d %v\n", int64(pt.At), pt.Rates)
			}
		}
	}
	// Impairment paths: jitter, burst loss, outage, codel, audit strict.
	variants := []struct {
		name string
		mut  func(*core.RunConfig)
	}{
		{"jitter", func(c *core.RunConfig) { c.Jitter = 2 * sim.Millisecond; c.RandomLoss = 0.001 }},
		{"burst", func(c *core.RunConfig) { c.BurstLoss = &core.BurstLossSpec{MeanLoss: 0.005, MeanBurstLen: 4} }},
		{"outage", func(c *core.RunConfig) {
			c.Outage = &core.OutageSpec{Start: 3 * sim.Second, Down: 300 * sim.Millisecond, Period: 2 * sim.Second, Count: 2}
		}},
		{"codel", func(c *core.RunConfig) { c.AQM = "codel" }},
		{"strict", func(c *core.RunConfig) { c.Audit = "strict" }},
	}
	for _, v := range variants {
		cfg := core.RunConfig{
			Rate:     50 * units.MbitPerSec,
			Buffer:   units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
			Flows:    core.MixedFlows(4, "cubic", "bbr", 20*sim.Millisecond),
			Warmup:   2 * sim.Second,
			Duration: 8 * sim.Second,
			Stagger:  sim.Second,
			Seed:     42,
		}
		v.mut(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			fmt.Printf("%s: ERR %v\n", v.name, err)
			continue
		}
		fmt.Printf("%s: events=%d drops=%d rnd=%d burst=%d out=%d agg=%d util=%.12f\n",
			v.name, res.Events, res.TotalDrops, res.RandomDrops, res.BurstDrops, res.OutageDrops,
			int64(res.AggregateGoodput), res.Utilization)
		for i, f := range res.Flows {
			fmt.Printf("  f%d sent=%d rtx=%d fr=%d rto=%d good=%d meanRTT=%d drops=%d\n",
				i, f.SegmentsSent, f.Retransmissions, f.FastRecoveries, f.RTOs, int64(f.Goodput), int64(f.MeanRTT), f.Drops)
		}
	}
}
