// Command ccbench runs the repo's Go benchmarks and records the
// results as a JSON document (BENCH_pr3.json at the repo root), so
// performance claims in EXPERIMENTS.md are backed by a committed,
// machine-readable artifact and CI can diff against it.
//
// Two modes:
//
//	ccbench -label optimized                 # run benchmarks, merge under "optimized"
//	ccbench -label baseline -parse old.txt   # parse saved `go test -bench` output
//
// The -parse mode exists so a baseline captured before a change (when
// the old code could still run) can be folded into the same document
// as the post-change numbers.
//
// Output schema (ccbench/v1):
//
//	{
//	  "schema": "ccbench/v1",
//	  "entries": {
//	    "<label>": {
//	      "capturedAt": "RFC3339",
//	      "goVersion": "go1.24.0",
//	      "command": "go test -bench ...",
//	      "benchmarks": {
//	        "<BenchmarkName>": {
//	          "runs": 5,
//	          "nsPerOp": 1.2e8,          // mean over runs
//	          "minNsPerOp": ..., "maxNsPerOp": ...,
//	          "allocsPerOp": ..., "bytesPerOp": ...,
//	          "metrics": {"events/run": ...}   // custom b.ReportMetric units
//	        }
//	      }
//	    }
//	  }
//	}
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ccatscale/internal/store"
)

type benchResult struct {
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"nsPerOp"`
	MinNsPerOp  float64            `json:"minNsPerOp"`
	MaxNsPerOp  float64            `json:"maxNsPerOp"`
	AllocsPerOp float64            `json:"allocsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type entry struct {
	CapturedAt string                  `json:"capturedAt"`
	GoVersion  string                  `json:"goVersion"`
	Command    string                  `json:"command"`
	Benchmarks map[string]*benchResult `json:"benchmarks"`
}

type document struct {
	Schema  string            `json:"schema"`
	Entries map[string]*entry `json:"entries"`
}

func main() {
	var (
		label     = flag.String("label", "current", "entry name to record results under")
		benchRe   = flag.String("bench", "BenchmarkEngineThroughput|BenchmarkSchedule|BenchmarkTimerChurn|BenchmarkScheduleCancel|BenchmarkQueuePushPop|BenchmarkPipeSend", "benchmark regex passed to go test -bench")
		pkgs      = flag.String("pkgs", "./...", "space-separated package patterns to benchmark")
		count     = flag.Int("count", 3, "benchmark repetitions (go test -count)")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		out       = flag.String("out", "BENCH_pr3.json", "JSON document to create or merge into")
		parse     = flag.String("parse", "", "parse saved `go test -bench` output from this file instead of running")
		show      = flag.Bool("v", false, "stream go test output to stderr while running")
	)
	flag.Parse()

	var (
		raw     []byte
		command string
		err     error
	)
	if *parse != "" {
		raw, err = os.ReadFile(*parse)
		if err != nil {
			fatal(err)
		}
		command = "parsed from " + *parse
	} else {
		args := []string{"test", "-run", "^$", "-bench", *benchRe,
			"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
		args = append(args, strings.Fields(*pkgs)...)
		command = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "ccbench: %s\n", command)
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		if *show {
			cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
		} else {
			cmd.Stdout = &buf
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("go test: %w", err))
		}
		raw = buf.Bytes()
	}

	benches := parseBenchOutput(raw)
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in output"))
	}

	doc := &document{Schema: "ccbench/v1", Entries: map[string]*entry{}}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, doc); err != nil {
			fatal(fmt.Errorf("existing %s is not a ccbench document: %w", *out, err))
		}
	}
	if doc.Entries == nil {
		doc.Entries = map[string]*entry{}
	}
	doc.Schema = "ccbench/v1"
	doc.Entries[*label] = &entry{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Command:    command,
		Benchmarks: benches,
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	// Atomic commit (temp file, fsync, rename, directory fsync): a
	// baseline file read-modify-written by CI must never be torn by a
	// crash mid-write — a corrupt baseline silently disarms the
	// regression gate.
	if err := store.WriteFileAtomic(*out, enc); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccbench: wrote %d benchmarks under %q to %s\n", len(benches), *label, *out)
	for name, r := range benches {
		fmt.Fprintf(os.Stderr, "  %-32s %12.0f ns/op %10.0f allocs/op %12.0f B/op (%d runs)\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Runs)
	}
}

// parseBenchOutput extracts benchmark lines of the form
//
//	BenchmarkName[-P]  iters  V1 unit1  V2 unit2 ...
//
// averaging repeated runs of the same benchmark.
func parseBenchOutput(raw []byte) map[string]*benchResult {
	type acc struct {
		runs              int
		ns, allocs, bytes float64
		minNs, maxNs      float64
		metrics           map[string]float64
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		a := accs[name]
		if a == nil {
			a = &acc{metrics: map[string]float64{}}
			accs[name] = a
		}
		var ns float64
		nsSeen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				ns, nsSeen = v, true
			case "allocs/op":
				a.allocs += v
			case "B/op":
				a.bytes += v
			default:
				a.metrics[unit] += v
			}
		}
		if !nsSeen {
			continue
		}
		if a.runs == 0 || ns < a.minNs {
			a.minNs = ns
		}
		if ns > a.maxNs {
			a.maxNs = ns
		}
		a.ns += ns
		a.runs++
	}
	out := map[string]*benchResult{}
	for name, a := range accs {
		if a.runs == 0 {
			continue
		}
		n := float64(a.runs)
		r := &benchResult{
			Runs:        a.runs,
			NsPerOp:     a.ns / n,
			MinNsPerOp:  a.minNs,
			MaxNsPerOp:  a.maxNs,
			AllocsPerOp: a.allocs / n,
			BytesPerOp:  a.bytes / n,
		}
		if len(a.metrics) > 0 {
			r.Metrics = map[string]float64{}
			for k, v := range a.metrics {
				r.Metrics[k] = v / n
			}
		}
		out[name] = r
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccbench:", err)
	os.Exit(1)
}
