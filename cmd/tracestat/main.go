// Command tracestat summarizes a bottleneck drop log the way the
// paper's §4 analysis does: drop count and rate, inter-drop time
// statistics, and the Goh–Barabási burstiness score (paper: ≈0.2 at
// EdgeScale, ≈0.35 at CoreScale).
//
// Input is one event timestamp per line (seconds, float), on stdin or
// in the files given as arguments. Lines starting with '#' are
// ignored; for CSV lines the first field is used.
//
// With -telemetry, the input is instead a telemetry JSONL stream (as
// written by reproduce -telemetry or fprint -telemetry) and the summary
// is event-taxonomy-aware: per-kind counts, per-run and per-flow loss
// episodes, queue watermarks, and the stream's virtual-time span.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ccatscale/internal/metrics"
	"ccatscale/internal/telemetry"
)

func main() {
	telemetryMode := flag.Bool("telemetry", false, "input is a telemetry JSONL stream, not raw timestamps")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracestat [-telemetry] [file ...] (default: stdin)\n")
	}
	flag.Parse()

	if *telemetryMode {
		if err := summarizeTelemetry(flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	var times []float64
	if flag.NArg() == 0 {
		t, err := parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		times = t
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		t, err := parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		times = append(times, t...)
	}
	if len(times) == 0 {
		fatal(fmt.Errorf("no events"))
	}

	sort.Float64s(times)
	span := times[len(times)-1] - times[0]
	fmt.Printf("events:     %d\n", len(times))
	fmt.Printf("span:       %.3fs\n", span)
	if span > 0 {
		fmt.Printf("event rate: %.2f/s\n", float64(len(times)-1)/span)
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	if len(gaps) > 0 {
		fmt.Printf("inter-event: mean %.6fs  median %.6fs  p95 %.6fs  stddev %.6fs\n",
			metrics.Mean(gaps), metrics.Median(gaps), metrics.Quantile(gaps, 0.95), metrics.StdDev(gaps))
	}
	fmt.Printf("burstiness (Goh–Barabási): %.3f\n", metrics.Burstiness(times))
}

func parse(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.IndexByte(text, ','); i >= 0 {
			text = text[:i]
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// summarizeTelemetry reads one or more telemetry JSONL streams and
// prints a taxonomy-aware summary. Unknown schema majors are rejected
// by the stream parser before any record is consumed.
func summarizeTelemetry(names []string) error {
	kindCounts := map[string]int{}
	lossByRun := map[string]int{}
	runs := map[string]bool{}
	flows := map[string]bool{}
	var records int
	var minT, maxT float64
	var queuePeakBytes, queuePeakPkts int64
	var degradations int

	scan := func(r io.Reader) error {
		return telemetry.ParseStream(r, func(rec telemetry.StreamRecord) error {
			records++
			kindCounts[rec.Kind]++
			if records == 1 || rec.T < minT {
				minT = rec.T
			}
			if rec.T > maxT {
				maxT = rec.T
			}
			if rec.Run != "" {
				runs[rec.Run] = true
			}
			if rec.Flow >= 0 {
				flows[fmt.Sprintf("%s/%d", rec.Run, rec.Flow)] = true
			}
			switch rec.Kind {
			case "loss":
				lossByRun[rec.Run]++
			case "queue-watermark":
				if rec.A > queuePeakBytes {
					queuePeakBytes = rec.A
				}
				if rec.B > queuePeakPkts {
					queuePeakPkts = rec.B
				}
			case "degraded":
				degradations++
			}
			return nil
		})
	}
	if len(names) == 0 {
		if err := scan(os.Stdin); err != nil {
			return err
		}
	}
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		err = scan(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if records == 0 {
		return fmt.Errorf("no telemetry records")
	}

	fmt.Printf("records:     %d\n", records)
	fmt.Printf("run labels:  %d\n", len(runs))
	if n := kindCounts["run-start"]; n > 0 {
		fmt.Printf("sim runs:    %d\n", n)
	}
	fmt.Printf("flows seen:  %d\n", len(flows))
	fmt.Printf("virtual span: %.3fs – %.3fs\n", minT, maxT)
	kinds := make([]string, 0, len(kindCounts))
	for k := range kindCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, kindCounts[k])
	}
	if n := kindCounts["loss"]; n > 0 {
		perRun := make([]float64, 0, len(lossByRun))
		for _, c := range lossByRun {
			perRun = append(perRun, float64(c))
		}
		fmt.Printf("loss episodes: %d total, mean %.1f/label\n", n, metrics.Mean(perRun))
	}
	if queuePeakBytes > 0 {
		fmt.Printf("queue peak:  %d bytes, %d packets\n", queuePeakBytes, queuePeakPkts)
	}
	if degradations > 0 {
		fmt.Printf("fidelity degradations: %d\n", degradations)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
