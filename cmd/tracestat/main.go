// Command tracestat summarizes a bottleneck drop log the way the
// paper's §4 analysis does: drop count and rate, inter-drop time
// statistics, and the Goh–Barabási burstiness score (paper: ≈0.2 at
// EdgeScale, ≈0.35 at CoreScale).
//
// Input is one event timestamp per line (seconds, float), on stdin or
// in the files given as arguments. Lines starting with '#' are
// ignored; for CSV lines the first field is used.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ccatscale/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracestat [file ...] (default: stdin)\n")
	}
	flag.Parse()

	var times []float64
	if flag.NArg() == 0 {
		t, err := parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		times = t
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		t, err := parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		times = append(times, t...)
	}
	if len(times) == 0 {
		fatal(fmt.Errorf("no events"))
	}

	sort.Float64s(times)
	span := times[len(times)-1] - times[0]
	fmt.Printf("events:     %d\n", len(times))
	fmt.Printf("span:       %.3fs\n", span)
	if span > 0 {
		fmt.Printf("event rate: %.2f/s\n", float64(len(times)-1)/span)
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	if len(gaps) > 0 {
		fmt.Printf("inter-event: mean %.6fs  median %.6fs  p95 %.6fs  stddev %.6fs\n",
			metrics.Mean(gaps), metrics.Median(gaps), metrics.Quantile(gaps, 0.95), metrics.StdDev(gaps))
	}
	fmt.Printf("burstiness (Goh–Barabási): %.3f\n", metrics.Burstiness(times))
}

func parse(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.IndexByte(text, ','); i >= 0 {
			text = text[:i]
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
