package main

import (
	"strings"
	"testing"
)

func TestParseTimestamps(t *testing.T) {
	in := `# drop log
0.5
1.25,flowid=3
2.0

`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.25, 2.0}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(strings.NewReader("not-a-number\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
