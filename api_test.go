package ccatscale

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite api.txt with the current public surface")

// TestPublicAPISurface locks the package's exported surface against the
// committed api.txt golden. An unreviewed export, removal, or signature
// change fails here first; deliberate changes regenerate the golden
// with `go test -run TestPublicAPISurface -update .` and show up in
// review as a diff of api.txt.
func TestPublicAPISurface(t *testing.T) {
	got := publicSurface(t)
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("api.txt updated (%d lines)", strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing golden: %v (regenerate with `go test -run TestPublicAPISurface -update .`)", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed; if intentional, regenerate with "+
			"`go test -run TestPublicAPISurface -update .`\n--- api.txt\n+++ current\n%s",
			surfaceDiff(string(want), got))
	}
}

// publicSurface renders every exported top-level declaration of the
// root package, sorted, one per stanza.
func publicSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["ccatscale"]
	if !ok {
		t.Fatalf("package ccatscale not found in %v", pkgs)
	}

	var decls []string
	render := func(node interface{}) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				decls = append(decls, render(&fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						ts := *s
						ts.Doc, ts.Comment = nil, nil
						if st, ok := ts.Type.(*ast.StructType); ok {
							ts.Type = exportedFieldsOnly(st)
						}
						decls = append(decls, "type "+render(&ts))
					case *ast.ValueSpec:
						vs := *s
						vs.Doc, vs.Comment = nil, nil
						var names []*ast.Ident
						for _, n := range vs.Names {
							if n.IsExported() {
								names = append(names, n)
							}
						}
						if len(names) == 0 {
							continue
						}
						vs.Names = names
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						decls = append(decls, kw+" "+render(&vs))
					}
				}
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n"
}

// exportedReceiver reports whether a method's receiver type is exported
// (plain functions pass trivially).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if gen, ok := typ.(*ast.IndexExpr); ok {
		typ = gen.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// exportedFieldsOnly strips unexported fields from a struct type, so
// internal layout churn does not read as an API change.
func exportedFieldsOnly(st *ast.StructType) *ast.StructType {
	out := &ast.StructType{Struct: st.Struct, Fields: &ast.FieldList{}}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(f.Names) > 0 && len(names) == 0 {
			continue
		}
		nf := *f
		nf.Doc, nf.Comment = nil, nil
		nf.Names = names
		out.Fields.List = append(out.Fields.List, &nf)
	}
	return out
}

// surfaceDiff renders a minimal line diff for the failure message.
func surfaceDiff(want, got string) string {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range wantLines {
		if !gotSet[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
