package ccatscale

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// oldPositionalConfig matches the pre-options call form
// Setting.Config(flows, seed), replaced by Build(flows, WithSeed(s)).
// The deprecated method still works — internal callers may keep it —
// but everything a user reads (examples, the README, the root package's
// docs and testable examples) must show the current API.
var oldPositionalConfig = regexp.MustCompile(`\.Config\(`)

func TestPublicSurfacesUseOptionsAPI(t *testing.T) {
	var files []string
	err := filepath.WalkDir("examples", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "README.md", "example_test.go", "ccatscale.go", "options.go")

	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if oldPositionalConfig.MatchString(line) {
				t.Errorf("%s:%d: uses the deprecated positional Config(flows, seed); "+
					"show Build(flows, WithSeed(...)) instead:\n\t%s", name, i+1, strings.TrimSpace(line))
			}
		}
	}
}
