package ccatscale

import (
	"ccatscale/internal/core"
	"ccatscale/internal/telemetry"
)

// RunOption customizes Run and RunMany: resource governance, live
// telemetry, and sweep behavior. Options never alter what a simulation
// computes — budgets and collectors observe and bound runs, they do not
// perturb them — so adding options to a call preserves bit-identical
// results for runs that complete.
type RunOption func(*SweepOptions)

// applyOptions folds options into a SweepOptions value (the shared
// carrier for both the single-run and sweep paths).
func applyOptions(opts []RunOption) SweepOptions {
	var o SweepOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithBudget bounds every run of the call that does not declare its own
// budget; sweeps additionally gate admission on it. See Budget.
func WithBudget(b *Budget) RunOption {
	return func(o *SweepOptions) { o.Budget = b }
}

// WithCollector attaches a telemetry collector to every run of the call
// that does not declare its own; sweeps also send their governance
// events (fidelity degradations) to it. A nil collector is the default:
// telemetry off, zero overhead.
func WithCollector(c Collector) RunOption {
	return func(o *SweepOptions) { o.Collector = c }
}

// WithParallelism bounds concurrent runs in RunMany (≤0 = 1). It has no
// effect on a single Run.
func WithParallelism(n int) RunOption {
	return func(o *SweepOptions) { o.Parallelism = n }
}

// WithSweepOptions replaces the whole option set at once — the escape
// hatch for retry tuning and for callers migrating from RunManyCtx.
// Later options still override its fields.
func WithSweepOptions(opt SweepOptions) RunOption {
	return func(o *SweepOptions) { *o = opt }
}

// Seed is the typed simulation seed of the options-based config path;
// see Setting.Build and WithSeed.
type Seed = core.Seed

// ConfigOption customizes a RunConfig built by Setting.Build.
type ConfigOption = core.ConfigOption

// WithSeed sets the seed of a config built by Setting.Build. Equal
// seeds reproduce runs bit-identically.
func WithSeed(seed Seed) ConfigOption { return core.WithSeed(seed) }

// WithRunCollector attaches a telemetry collector to one built config,
// overriding the setting's attachment and any call-level WithCollector.
func WithRunCollector(c Collector) ConfigOption { return core.WithRunCollector(c) }

// Collector receives telemetry events from instrumented runs; nil means
// telemetry is off. Implementations must only observe (never call back
// into the simulation) and must be safe for concurrent runs of a sweep.
type Collector = telemetry.Collector

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc = telemetry.CollectorFunc

// Event is one telemetry observation; its A/B payload is kind-specific
// (see EventKind).
type Event = telemetry.Event

// EventKind discriminates telemetry events.
type EventKind = telemetry.Kind

// Telemetry event kinds. The A/B payload semantics of each kind are
// documented on the internal/telemetry Kind constants.
const (
	EventRunStart       = telemetry.KindRunStart
	EventRunEnd         = telemetry.KindRunEnd
	EventFlowStart      = telemetry.KindFlowStart
	EventFlowEnd        = telemetry.KindFlowEnd
	EventCCAState       = telemetry.KindCCAState
	EventLoss           = telemetry.KindLoss
	EventRecoveryExit   = telemetry.KindRecoveryExit
	EventQueueWatermark = telemetry.KindQueueWatermark
	EventEngineSample   = telemetry.KindEngineSample
	EventLinkDown       = telemetry.KindLinkDown
	EventLinkUp         = telemetry.KindLinkUp
	EventDegraded       = telemetry.KindDegraded
)

// MultiCollector fans every event out to each non-nil collector; zero
// or one effective targets collapse to nil or the target itself.
func MultiCollector(cs ...Collector) Collector { return telemetry.Multi(cs...) }
