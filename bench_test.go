package ccatscale

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls
// out. Each benchmark iteration executes the experiment at a reduced
// "bench tier" (shortened windows, scaled flow counts) and reports the
// paper's metric via b.ReportMetric, so
//
//	go test -bench . -benchmem
//
// regenerates the shape of every result in one command. EXPERIMENTS.md
// records the full-scale numbers produced by cmd/ccatscale.
//
// Benchmarks are heavyweight (each iteration simulates tens of virtual
// seconds); use -benchtime=1x for a single pass.

import (
	"testing"
	"time"

	"ccatscale/internal/core"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// benchEdge is EdgeScale with shortened windows.
func benchEdge() Setting {
	s := EdgeScale()
	s.Warmup = 10 * sim.Second
	s.Duration = 30 * sim.Second
	s.Stagger = 3 * sim.Second
	return s
}

// benchCore is the scaled CoreScale bench tier: 200 Mbps, 20–100 flows,
// shortened windows. Per-flow bandwidth and buffer/BDP match the paper.
func benchCore() Setting {
	s := CoreScaleScaled(50)
	s.Warmup = 10 * sim.Second
	s.Duration = 30 * sim.Second
	s.Stagger = 3 * sim.Second
	return s
}

const benchRTT = 20 * time.Millisecond

func reportMathisRow(b *testing.B, r MathisRow) {
	b.ReportMetric(r.CLoss, "C_loss")
	b.ReportMetric(r.CHalve, "C_halving")
	b.ReportMetric(r.MedianErrLoss*100, "errLoss_%")
	b.ReportMetric(r.MedianErrHalve*100, "errHalving_%")
	b.ReportMetric(r.LossToHalvingRatio, "loss:halving")
	b.ReportMetric(r.DropBurstiness, "burstiness")
}

func mathisBench(b *testing.B, s Setting, flows int) MathisRow {
	b.Helper()
	var row MathisRow
	for i := 0; i < b.N; i++ {
		cfg := s.Build(core.UniformFlows(flows, "reno", core.DefaultRTT), WithSeed(Seed(uint64(i+1))))
		cfg.MaxDropTimestamps = 1 << 20
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		row = core.MathisAnalyze(s.Name, flows, res)
	}
	return row
}

// BenchmarkTable1MathisConstant regenerates Table 1: the fitted Mathis
// constant under both interpretations of p, at the edge and core
// tiers. Paper: C(loss) is setting/flow-count dependent (1.78 → 3.2–4.0)
// while C(halving) stays ≈1.34–1.47.
func BenchmarkTable1MathisConstant(b *testing.B) {
	b.Run("EdgeScale/flows=30", func(b *testing.B) {
		reportMathisRow(b, mathisBench(b, benchEdge(), 30))
	})
	b.Run("CoreScale/flows=100", func(b *testing.B) {
		reportMathisRow(b, mathisBench(b, benchCore(), 100))
	})
}

// BenchmarkFig2MathisError regenerates Figure 2: median prediction
// error with each p. Paper: ≤10 % with the halving rate at scale,
// 45–55 % with the loss rate.
func BenchmarkFig2MathisError(b *testing.B) {
	row := mathisBench(b, benchCore(), 60)
	b.ReportMetric(row.MedianErrLoss*100, "errLoss_%")
	b.ReportMetric(row.MedianErrHalve*100, "errHalving_%")
}

// BenchmarkFig3LossHalvingRatio regenerates Figure 3: the packet-loss
// to CWND-halving ratio. Paper: ≈1.7 at the edge, 6–9 at core scale.
func BenchmarkFig3LossHalvingRatio(b *testing.B) {
	b.Run("EdgeScale", func(b *testing.B) {
		row := mathisBench(b, benchEdge(), 30)
		b.ReportMetric(row.LossToHalvingRatio, "loss:halving")
	})
	b.Run("CoreScale", func(b *testing.B) {
		row := mathisBench(b, benchCore(), 60)
		b.ReportMetric(row.LossToHalvingRatio, "loss:halving")
	})
}

// BenchmarkBurstiness regenerates the §4 drop-burstiness measurement
// (figure not shown in the paper): Goh–Barabási ≈0.2 edge, ≈0.35 core.
func BenchmarkBurstiness(b *testing.B) {
	b.Run("EdgeScale", func(b *testing.B) {
		row := mathisBench(b, benchEdge(), 30)
		b.ReportMetric(row.DropBurstiness, "burstiness")
	})
	b.Run("CoreScale", func(b *testing.B) {
		row := mathisBench(b, benchCore(), 60)
		b.ReportMetric(row.DropBurstiness, "burstiness")
	})
}

func fairnessBench(b *testing.B, s Setting, flows []FlowSpec, seedBase uint64) RunResult {
	b.Helper()
	var res RunResult
	for i := 0; i < b.N; i++ {
		r, err := core.Run(s.Build(flows, WithSeed(Seed(seedBase+uint64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

// BenchmarkIntraFairnessLossBased regenerates Finding 4: NewReno and
// Cubic stay intra-CCA fair at scale (paper: JFI > 0.99).
func BenchmarkIntraFairnessLossBased(b *testing.B) {
	for _, cca := range []string{"reno", "cubic"} {
		b.Run(cca, func(b *testing.B) {
			s := benchCore()
			s.Duration = 60 * sim.Second // AIMD convergence needs rounds
			res := fairnessBench(b, s, UniformFlows(60, cca, benchRTT), 1)
			b.ReportMetric(res.JFI(), "JFI")
		})
	}
}

// BenchmarkFig4BBRIntraFairness regenerates Figure 4: BBR's intra-CCA
// JFI collapses at scale (paper: as low as 0.4 at core, 0.7 beyond 10
// flows at the edge).
func BenchmarkFig4BBRIntraFairness(b *testing.B) {
	b.Run("EdgeScale/flows=10", func(b *testing.B) {
		res := fairnessBench(b, benchEdge(), UniformFlows(10, "bbr", benchRTT), 1)
		b.ReportMetric(res.JFI(), "JFI")
	})
	b.Run("CoreScale/flows=100", func(b *testing.B) {
		res := fairnessBench(b, benchCore(), UniformFlows(100, "bbr", benchRTT), 1)
		b.ReportMetric(res.JFI(), "JFI")
	})
}

// BenchmarkFig5CubicVsReno regenerates Figure 5: Cubic's share against
// an equal NewReno population (paper: 70–80 %).
func BenchmarkFig5CubicVsReno(b *testing.B) {
	res := fairnessBench(b, benchCore(), MixedFlows(60, "cubic", "reno", benchRTT), 1)
	b.ReportMetric(res.ShareByCCA()["cubic"]*100, "cubicShare_%")
}

// BenchmarkFig6OneBBRVsReno regenerates Figure 6: a single BBR flow
// against a NewReno crowd (paper: ≈40 % regardless of crowd size).
func BenchmarkFig6OneBBRVsReno(b *testing.B) {
	res := fairnessBench(b, benchCore(), OneVersusFlows(60, "bbr", "reno", benchRTT), 1)
	b.ReportMetric(res.ShareByCCA()["bbr"]*100, "bbrShare_%")
	b.ReportMetric(WareBBRShare(15)*100, "wareModel_%")
}

// BenchmarkFig7OneBBRVsCubic regenerates Figure 7: a single BBR flow
// against a Cubic crowd (paper: ≈40 %).
func BenchmarkFig7OneBBRVsCubic(b *testing.B) {
	res := fairnessBench(b, benchCore(), OneVersusFlows(60, "bbr", "cubic", benchRTT), 1)
	b.ReportMetric(res.ShareByCCA()["bbr"]*100, "bbrShare_%")
}

// BenchmarkFig8BBRVsReno regenerates Figure 8a: BBR against an equal
// NewReno population (paper: up to 99.9 % at scale).
func BenchmarkFig8BBRVsReno(b *testing.B) {
	res := fairnessBench(b, benchCore(), MixedFlows(60, "bbr", "reno", benchRTT), 1)
	b.ReportMetric(res.ShareByCCA()["bbr"]*100, "bbrShare_%")
}

// BenchmarkFig8BBRVsCubic regenerates Figure 8b: BBR against an equal
// Cubic population.
func BenchmarkFig8BBRVsCubic(b *testing.B) {
	res := fairnessBench(b, benchCore(), MixedFlows(60, "bbr", "cubic", benchRTT), 1)
	b.ReportMetric(res.ShareByCCA()["bbr"]*100, "bbrShare_%")
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationDelayedACK compares the Mathis constant with and
// without delayed ACKs: the original paper's C = 0.94 derivation is
// delayed-ACK-specific.
func BenchmarkAblationDelayedACK(b *testing.B) {
	for _, mode := range []struct {
		name  string
		delay sim.Time
	}{{"delack=on", 0}, {"delack=off", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			var row MathisRow
			for i := 0; i < b.N; i++ {
				s := benchEdge()
				cfg := s.Build(core.UniformFlows(30, "reno", core.DefaultRTT), WithSeed(Seed(uint64(i+1))))
				cfg.DelAckDelay = mode.delay
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				row = core.MathisAnalyze(s.Name, 30, res)
			}
			b.ReportMetric(row.CHalve, "C_halving")
		})
	}
}

// BenchmarkAblationBufferSize sweeps the buffer through 0.25/0.5/1.0
// BDP(200ms): small buffers change the BBR-vs-loss-based balance (Hock
// et al.), the design choice behind the paper's 1-BDP rule.
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, frac := range []struct {
		name    string
		num, dn units.ByteCount
	}{{"0.25bdp", 1, 4}, {"0.5bdp", 1, 2}, {"1.0bdp", 1, 1}} {
		b.Run(frac.name, func(b *testing.B) {
			var res RunResult
			for i := 0; i < b.N; i++ {
				s := benchCore()
				bdp := units.BDP(s.Rate, 200*sim.Millisecond)
				s.Buffer = bdp * frac.num / frac.dn
				r, err := core.Run(s.Build(MixedFlows(20, "bbr", "reno", benchRTT), WithSeed(Seed(uint64(i+1)))))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.ShareByCCA()["bbr"]*100, "bbrShare_%")
		})
	}
}

// BenchmarkAblationProbeRTT compares BBR intra-fairness with the stock
// 10 s min-RTT filter window: the paper hypothesizes ProbeRTT
// desynchronization drives Finding 5 (window variation is exercised via
// seeds here; the mechanism itself lives in internal/cca).
func BenchmarkAblationProbeRTT(b *testing.B) {
	res := fairnessBench(b, benchCore(), UniformFlows(60, "bbr", benchRTT), 7)
	b.ReportMetric(res.JFI(), "JFI")
}

// BenchmarkAblationStagger compares staggered vs simultaneous starts:
// synchronized starts synchronize loss episodes and change fairness
// convergence.
func BenchmarkAblationStagger(b *testing.B) {
	for _, mode := range []struct {
		name    string
		stagger sim.Time
	}{{"staggered", 3 * sim.Second}, {"simultaneous", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var res RunResult
			for i := 0; i < b.N; i++ {
				s := benchCore()
				s.Stagger = mode.stagger
				r, err := core.Run(s.Build(UniformFlows(60, "reno", benchRTT), WithSeed(Seed(uint64(i+1)))))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.JFI(), "JFI")
			b.ReportMetric(res.DropBurstiness, "burstiness")
		})
	}
}

// BenchmarkAblationHyStart measures what Cubic's HyStart is worth:
// without it, slow start overshoots the pipe and the early drop count
// balloons. The comparison runs at the EdgeScale tier deliberately —
// under at-scale GRO, stretch ACKs starve HyStart of the ≥8 RTT samples
// per round it needs and the mechanism goes quiet (a real deployment
// phenomenon this simulation reproduces).
func BenchmarkAblationHyStart(b *testing.B) {
	for _, variant := range []string{"cubic", "cubic-nohystart"} {
		b.Run(variant, func(b *testing.B) {
			var res RunResult
			for i := 0; i < b.N; i++ {
				s := benchEdge()
				s.Warmup = 5 * sim.Second
				s.Duration = 15 * sim.Second
				s.Stagger = 10 * sim.Second // spread starts so overshoot episodes are visible
				r, err := core.Run(s.Build(UniformFlows(10, variant, benchRTT), WithSeed(Seed(uint64(i+1)))))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(float64(res.TotalDrops), "drops")
			b.ReportMetric(res.Utilization*100, "util_%")
		})
	}
}

// BenchmarkAblationAQM contrasts the paper's drop-tail bottleneck with
// CoDel (extension axis): AQM removes the standing queue that drives
// the paper's at-scale Mathis divergence and inter-CCA findings.
func BenchmarkAblationAQM(b *testing.B) {
	for _, aqm := range []string{"droptail", "codel"} {
		b.Run(aqm, func(b *testing.B) {
			var res RunResult
			for i := 0; i < b.N; i++ {
				s := benchCore()
				s.AQM = aqm
				r, err := core.Run(s.Build(UniformFlows(20, "reno", benchRTT), WithSeed(Seed(uint64(i+1)))))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			meanRTT := 0.0
			for _, f := range res.Flows {
				meanRTT += f.MeanRTT.Seconds()
			}
			b.ReportMetric(meanRTT/float64(len(res.Flows))*1000, "meanRTT_ms")
			b.ReportMetric(res.Utilization*100, "util_%")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator performance:
// simulated packet-events per wall second for a saturated bottleneck.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchCore()
		s.Warmup = 2 * sim.Second
		s.Duration = 10 * sim.Second
		res, err := core.Run(s.Build(UniformFlows(20, "reno", benchRTT), WithSeed(Seed(1))))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

// BenchmarkExtensionChurn measures flow-completion-time quantiles under
// Poisson churn at 60 % offered load (extension axis: the paper's
// limitations name flow arrival/departure as future work).
func BenchmarkExtensionChurn(b *testing.B) {
	var res core.ChurnResult
	for i := 0; i < b.N; i++ {
		s := benchCore()
		size := units.ByteCount(500 * units.KB)
		cfg := core.ChurnConfig{
			Rate:          s.Rate,
			Buffer:        s.Buffer,
			CCA:           "reno",
			RTT:           core.DefaultRTT,
			TransferBytes: size,
			ArrivalRate:   0.6 * float64(s.Rate) / (float64(size) * 8),
			Duration:      20 * sim.Second,
			Seed:          uint64(i + 1),
		}
		r, err := core.RunChurn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.P50FCT, "p50FCT_s")
	b.ReportMetric(res.P99FCT, "p99FCT_s")
	b.ReportMetric(float64(res.Completed), "completed")
}
