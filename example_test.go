package ccatscale_test

import (
	"context"
	"fmt"
	"time"

	"ccatscale"
)

// ExampleJFI reproduces the fairness arithmetic of the paper's §5:
// equal shares score 1, a single hog among ten flows scores 1/n.
func ExampleJFI() {
	equal := ccatscale.JFI([]float64{5, 5, 5, 5})
	hog := ccatscale.JFI([]float64{100, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	fmt.Printf("equal: %.2f hog: %.2f\n", equal, hog)
	// Output: equal: 1.00 hog: 0.10
}

// ExampleMathisPredict evaluates the Mathis model at the paper's
// parameters: MSS 1448, 20 ms RTT, 1 % congestion-event rate.
func ExampleMathisPredict() {
	bps := ccatscale.MathisPredict(1.0, 1448, 20*time.Millisecond, 0.01)
	fmt.Printf("%.0f bytes/sec\n", bps)
	// Output: 724000 bytes/sec
}

// ExampleBurstiness contrasts periodic and clustered event streams,
// the §4 loss-burstiness measurement.
func ExampleBurstiness() {
	periodic := ccatscale.Burstiness([]float64{0, 1, 2, 3, 4, 5})
	bursty := ccatscale.Burstiness([]float64{0, 0.01, 0.02, 10, 10.01, 10.02, 20, 20.01, 20.02})
	fmt.Printf("periodic: %.0f bursty: %.2f\n", periodic, bursty)
	// Output: periodic: -1 bursty: 0.27
}

// ExampleWareBBRShare shows the Ware et al. prediction the paper
// validates in Figures 6–7: on a deep buffer, a cap-limited BBR
// aggregate settles at a fixed link share regardless of how many
// loss-based flows it faces.
func ExampleWareBBRShare() {
	fmt.Printf("deep buffer: %.0f%%\n", ccatscale.WareBBRShare(15)*100)
	// Output: deep buffer: 50%
}

// ExampleRun executes a minimal deterministic experiment end to end
// with the options-based API: the seed is typed (untransposable with
// flow counts) and the call is context-first.
func ExampleRun() {
	setting := ccatscale.CoreScaleScaled(100) // 100 Mbps tier
	setting.Warmup = 5e9
	setting.Duration = 20e9
	cfg := setting.Build(
		ccatscale.UniformFlows(4, "reno", 20*time.Millisecond),
		ccatscale.WithSeed(1))
	res, err := ccatscale.Run(context.Background(), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("flows: %d, utilization > 90%%: %v\n",
		len(res.Flows), res.Utilization > 0.9)
	// Output: flows: 4, utilization > 90%: true
}

// ExampleRun_telemetry attaches a telemetry collector to a run. The
// collector observes loss episodes without perturbing the simulation:
// the run's results are bit-identical with or without it.
func ExampleRun_telemetry() {
	setting := ccatscale.CoreScaleScaled(100)
	setting.Warmup = 5e9
	setting.Duration = 20e9
	cfg := setting.Build(
		ccatscale.UniformFlows(4, "reno", 20*time.Millisecond),
		ccatscale.WithSeed(1))

	var losses int
	counter := ccatscale.CollectorFunc(func(ev ccatscale.Event) {
		if ev.Kind == ccatscale.EventLoss {
			losses++
		}
	})
	res, err := ccatscale.Run(context.Background(), cfg, ccatscale.WithCollector(counter))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("saw loss episodes: %v, utilization > 90%%: %v\n",
		losses > 0, res.Utilization > 0.9)
	// Output: saw loss episodes: true, utilization > 90%: true
}
