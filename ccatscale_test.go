package ccatscale

import (
	"context"
	"math"
	"testing"
	"time"
)

// fastSetting is a quick public-API smoke regime.
func fastSetting() Setting {
	s := CoreScaleScaled(100) // 100 Mbps, 10–50 flows
	s.Warmup = 5e9
	s.Duration = 20e9
	s.Stagger = 2e9
	return s
}

func TestPublicRunAndShares(t *testing.T) {
	s := fastSetting()
	// Cubic's edge over NewReno builds during congestion avoidance
	// (with HyStart both leave slow start early), so give the run
	// enough rounds for the cubic-vs-AIMD growth gap to show.
	s.Duration = 60e9
	cfg := s.Build(MixedFlows(10, "cubic", "reno", 20*time.Millisecond), WithSeed(1))
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	share := res.ShareByCCA()
	if share["cubic"]+share["reno"] < 0.99 {
		t.Fatalf("shares don't sum to 1: %v", share)
	}
	if share["cubic"] <= 0.5 {
		t.Fatalf("cubic share = %v, want > 0.5 (paper Finding 8)", share["cubic"])
	}
}

func TestPublicFlowBuilders(t *testing.T) {
	flows := OneVersusFlows(5, "bbr", "reno", 20*time.Millisecond)
	if len(flows) != 5 || flows[0].CCA != "bbr" || flows[4].CCA != "reno" {
		t.Fatalf("OneVersusFlows = %v", flows)
	}
	u := UniformFlows(3, "reno", 100*time.Millisecond)
	if len(u) != 3 || u[0].RTT.Std() != 100*time.Millisecond {
		t.Fatalf("UniformFlows = %v", u)
	}
}

func TestPublicMathisPredict(t *testing.T) {
	// 1448·1/(0.02·√0.01) = 724000 bytes/s.
	got := MathisPredict(1, 1448, 20*time.Millisecond, 0.01)
	if math.Abs(got-724000) > 1e-6 {
		t.Fatalf("MathisPredict = %v", got)
	}
}

func TestPublicJFIAndBurstiness(t *testing.T) {
	if JFI([]float64{1, 1, 1}) != 1 {
		t.Fatal("JFI")
	}
	if b := Burstiness([]float64{0, 1, 2, 3, 4}); math.Abs(b+1) > 1e-9 {
		t.Fatalf("Burstiness periodic = %v", b)
	}
}

func TestPublicWareShare(t *testing.T) {
	if got := WareBBRShare(15); got != 0.5 {
		t.Fatalf("WareBBRShare(15) = %v", got)
	}
}

func TestPaperRTTs(t *testing.T) {
	rtts := PaperRTTs()
	want := []time.Duration{20 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(rtts) != 3 {
		t.Fatalf("PaperRTTs = %v", rtts)
	}
	for i := range want {
		if rtts[i] != want[i] {
			t.Fatalf("PaperRTTs[%d] = %v, want %v", i, rtts[i], want[i])
		}
	}
}

func TestSettingsExposePaperParameters(t *testing.T) {
	e := EdgeScale()
	if e.Rate.String() != "100Mbps" || e.Buffer.String() != "3MB" {
		t.Fatalf("EdgeScale = %v %v", e.Rate, e.Buffer)
	}
	c := CoreScale()
	if c.Rate.String() != "10Gbps" || c.Buffer.String() != "375MB" {
		t.Fatalf("CoreScale = %v %v", c.Rate, c.Buffer)
	}
}

func TestMSSConstant(t *testing.T) {
	if MSS != 1448 {
		t.Fatalf("MSS = %d", MSS)
	}
}

func TestPublicSweeps(t *testing.T) {
	s := fastSetting()
	s.FlowCounts = []int{4}
	s.Duration = 15e9

	rows, err := MathisSweep(s, 1, 2)
	if err != nil || len(rows) != 1 {
		t.Fatalf("MathisSweep: %v %v", rows, err)
	}
	intra, err := IntraCCASweep(s, "reno", []time.Duration{20 * time.Millisecond}, 1, 2)
	if err != nil || len(intra) != 1 || intra[0].JFI <= 0 {
		t.Fatalf("IntraCCASweep: %+v %v", intra, err)
	}
	inter, err := InterCCASweep(s, EqualSplit, "cubic", "reno", []time.Duration{20 * time.Millisecond}, 1, 2)
	if err != nil || len(inter) != 1 {
		t.Fatalf("InterCCASweep: %+v %v", inter, err)
	}
	res, err := RunMany(context.Background(),
		[]RunConfig{s.Build(UniformFlows(2, "reno", 20*time.Millisecond), WithSeed(1))},
		WithParallelism(2))
	if err != nil || len(res) != 1 {
		t.Fatalf("RunMany: %v", err)
	}
}

func TestPublicChurn(t *testing.T) {
	s := fastSetting()
	res, err := RunChurn(ChurnConfig{
		Rate:          s.Rate,
		Buffer:        s.Buffer,
		CCA:           "reno",
		RTT:           20e6, // 20 ms in sim.Time units
		TransferBytes: 200e3,
		ArrivalRate:   10,
		Duration:      10e9,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.P50FCT <= 0 {
		t.Fatalf("churn result: %+v", res)
	}
}
